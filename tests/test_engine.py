"""Unit tests for the cycle-driven simulation kernel."""

import pytest

from repro.sim.engine import Clocked, Engine
from repro.sim.stats import Histogram, StatsRegistry


class Counter(Clocked):
    def __init__(self):
        self.value = 0
        self._next = 0

    def step(self, cycle):
        self._next = self.value + 1

    def commit(self, cycle):
        self.value = self._next


class Echo(Clocked):
    """Reads another component's committed state during step."""

    def __init__(self, source):
        self.source = source
        self.seen = []

    def step(self, cycle):
        self.seen.append(self.source.value)

    def commit(self, cycle):
        pass


class TestEngine:
    def test_tick_advances_cycle(self):
        engine = Engine()
        assert engine.cycle == 0
        engine.tick()
        assert engine.cycle == 1

    def test_run_returns_cycles_simulated(self):
        engine = Engine()
        assert engine.run(10) == 10
        assert engine.cycle == 10

    def test_component_steps_every_cycle(self):
        engine = Engine()
        counter = engine.register(Counter())
        engine.run(5)
        assert counter.value == 5

    def test_two_phase_isolation(self):
        # Echo reads the counter's committed value: regardless of
        # registration order, it must see the previous cycle's value.
        engine = Engine()
        counter = Counter()
        echo = Echo(counter)
        engine.register(counter)
        engine.register(echo)
        engine.run(3)
        assert echo.seen == [0, 1, 2]

    def test_two_phase_isolation_reversed_order(self):
        engine = Engine()
        counter = Counter()
        echo = Echo(counter)
        engine.register(echo)
        engine.register(counter)
        engine.run(3)
        assert echo.seen == [0, 1, 2]

    def test_until_predicate_stops_early(self):
        engine = Engine()
        counter = engine.register(Counter())
        ran = engine.run(100, until=lambda: counter.value >= 7)
        assert ran == 7

    def test_stop_request(self):
        engine = Engine()
        counter = engine.register(Counter())
        engine.add_watcher(lambda cycle: engine.stop() if cycle >= 4 else None)
        engine.run(100)
        assert engine.cycle == 4

    def test_register_rejects_non_clocked(self):
        engine = Engine()
        with pytest.raises(TypeError):
            engine.register(object())

    def test_deterministic_random(self):
        a = Engine(seed=42).random.random()
        b = Engine(seed=42).random.random()
        assert a == b


class TestStats:
    def test_counters(self):
        stats = StatsRegistry()
        stats.incr("x")
        stats.incr("x", 4)
        assert stats.counter("x") == 5
        assert stats.counter("missing") == 0

    def test_histogram_mean_min_max(self):
        hist = Histogram()
        for v in (1, 2, 3, 4):
            hist.add(v)
        assert hist.mean == 2.5
        assert hist.minimum == 1
        assert hist.maximum == 4
        assert hist.count == 4

    def test_histogram_percentile(self):
        hist = Histogram()
        for v in range(101):
            hist.add(v)
        assert hist.percentile(50) == 50
        assert hist.percentile(100) == 100
        assert hist.percentile(0) == 0

    def test_empty_histogram(self):
        hist = Histogram()
        assert hist.mean == 0.0
        assert hist.percentile(50) == 0.0
        assert hist.minimum is None

    def test_snapshot_includes_means(self):
        stats = StatsRegistry()
        stats.observe("lat", 10)
        stats.observe("lat", 20)
        stats.incr("n")
        snap = stats.snapshot()
        assert snap["lat.mean"] == 15.0
        assert snap["lat.count"] == 2.0
        assert snap["n"] == 1.0

    def test_snapshot_prefix_filter(self):
        stats = StatsRegistry()
        stats.incr("a.x")
        stats.incr("b.y")
        snap = stats.snapshot(prefixes=["a."])
        assert "a.x" in snap and "b.y" not in snap

    def test_merge(self):
        a, b = StatsRegistry(), StatsRegistry()
        a.incr("n", 2)
        b.incr("n", 3)
        b.observe("lat", 7)
        a.merge(b)
        assert a.counter("n") == 5
        assert a.mean("lat") == 7
