"""Smoke tests for the example scripts: each example's main() must run
to completion (the fast ones run in-process here; the heavier sweeps are
exercised by the benchmark harness instead)."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "ordered_network_walkthrough",
    "lock_contention",
    "sharing_patterns",
    "trace_file_workflow",
]


def load_example(name):
    path = EXAMPLES / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_example_runs(name, capsys):
    module = load_example(name)
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"{name} printed nothing"


def test_every_example_has_main_and_docstring():
    for path in sorted(EXAMPLES.glob("*.py")):
        text = path.read_text()
        assert '"""' in text.split("\n", 2)[-1] or text.startswith('#!'), \
            f"{path.name}: missing docstring"
        assert "def main()" in text, f"{path.name}: missing main()"
        assert '__name__ == "__main__"' in text, \
            f"{path.name}: not directly runnable"


def test_walkthrough_all_nodes_agree(capsys):
    module = load_example("ordered_network_walkthrough")
    module.main()
    out = capsys.readouterr().out
    assert "agree" in out.lower() or "same" in out.lower()
