"""Golden experiment documents (repro.api v1).

The checked-in documents under examples/experiments/ are the declarative
form of the figure harnesses.  The contract locked here:

* each document expands to *exactly* the specs the code path builds
  (same resolved keys, same labels, same order);
* running the document yields byte-identical ``SweepResult`` payloads
  to the code path, and the two share result-cache entries (a document
  run warms the cache for the code-built equivalent);
* validation is strict — malformed documents fail at load with a
  pointed error, never as a silently defaulted simulation.
"""

import json
from pathlib import Path

import pytest

from repro.analysis import figures
from repro.api import (DOCUMENT_SCHEMA, RESULTS_SCHEMA, DocumentError,
                       describe_experiment, experiment_from_dict,
                       load_experiment, run_experiment)
from repro.experiments import RunSpec, Sweep, as_cache, run_sweep

DOCS = Path(__file__).resolve().parent.parent / "examples" / "experiments"

try:
    import tomllib                                     # noqa: F401
    HAS_TOML = True
except ImportError:   # pragma: no cover - Python < 3.11
    try:
        import tomli as tomllib  # type: ignore[no-redef]  # noqa: F401
        HAS_TOML = True
    except ImportError:
        HAS_TOML = False

needs_toml = pytest.mark.skipif(
    not HAS_TOML, reason="TOML documents need tomllib (3.11+) or tomli")

CASES = {
    "fig7": lambda: figures.fig7_specs(True, 0)[2],
    "sec2": lambda: figures.sec2_specs(True, 0),
    "incf": lambda: figures.incf_specs(True, 0)[2],
    "locks": lambda: figures.locks_specs(True, 0),
}


def _minimal(**extra):
    base = {"schema": DOCUMENT_SCHEMA, "name": "t",
            "runs": [{"builder": "scorpio"}]}
    base.update(extra)
    return base


# ---------------------------------------------------------------------------
# Document == code path
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("case", sorted(CASES))
@needs_toml
def test_document_expands_to_code_path_specs(case):
    document = load_experiment(DOCS / f"{case}.toml")
    code_specs = CASES[case]()
    assert len(document.specs) == len(code_specs)
    for doc_spec, code_spec in zip(document.specs, code_specs):
        assert doc_spec.key() == code_spec.key()
        assert doc_spec.label == code_spec.label


@pytest.mark.parametrize("case", sorted(CASES))
@needs_toml
def test_document_payloads_byte_identical_and_cache_shared(case, tmp_path):
    """Run the document, then the code path against the same cache: the
    code path must be answered entirely from the document's results and
    the two payload streams must serialize byte-for-byte the same."""
    cache = as_cache(tmp_path / "cache")
    document = load_experiment(DOCS / f"{case}.toml")
    doc_results = run_experiment(document, cache=cache).results
    code_results = run_sweep(CASES[case](), cache=cache)
    assert all(result.cached for result in code_results), \
        "code path missed the cache the document warmed"
    doc_bytes = [json.dumps(result.payload(), sort_keys=True)
                 for result in doc_results]
    code_bytes = [json.dumps(result.payload(), sort_keys=True)
                  for result in code_results]
    assert doc_bytes == code_bytes


@needs_toml
def test_smoke_document_results_envelope(tmp_path):
    """The CI document end-to-end: runs, litmus verdict, stable
    envelope schema."""
    outcome = run_experiment(DOCS / "fig7_smoke.toml")
    payload = outcome.payload()
    assert payload["schema"] == RESULTS_SCHEMA
    assert payload["experiment"] == "fig7-smoke"
    assert len(payload["results"]) == 4
    for row in payload["results"]:
        assert row["progress"] == 1.0
    assert payload["litmus"] == {"message-passing": True}
    # The envelope is JSON-able and stable.
    text = json.dumps(payload, sort_keys=True)
    assert json.loads(text) == payload


@needs_toml
def test_json_form_equivalent_to_toml():
    import tomllib
    raw = tomllib.loads((DOCS / "locks.toml").read_text())
    from_toml = load_experiment(DOCS / "locks.toml")
    from_json = experiment_from_dict(json.loads(json.dumps(raw)))
    assert from_json.resolved() == from_toml.resolved()


@needs_toml
def test_describe_is_stable_resolved_json():
    text = describe_experiment(DOCS / "locks.toml")
    resolved = json.loads(text)
    assert resolved["schema"] == DOCUMENT_SCHEMA
    assert resolved["name"] == "locks"
    assert len(resolved["runs"]) == 3
    # Fully expanded: each run embeds the whole chip config.
    assert resolved["runs"][0]["config"]["noc"]["width"] == 3
    assert text == describe_experiment(DOCS / "locks.toml")


@needs_toml
def test_describe_fingerprints_match_spec_fingerprints():
    document = load_experiment(DOCS / "locks.toml")
    resolved = document.resolved(fingerprints=True)
    from repro.experiments.cache import code_version
    version = code_version()
    for entry, spec in zip(resolved["runs"], document.specs):
        assert entry["fingerprint"] == spec.fingerprint(
            code_version=version)


# ---------------------------------------------------------------------------
# Matrix / litmus sections
# ---------------------------------------------------------------------------

def test_matrix_expands_like_sweep():
    document = experiment_from_dict({
        "schema": 1, "name": "m",
        "matrix": {"benchmarks": ["fft", "lu"],
                   "protocols": ["lpd", "scorpio"], "seeds": [0, 1],
                   "ops_per_core": 12}})
    sweep = Sweep(benchmarks=["fft", "lu"], protocols=("lpd", "scorpio"),
                  seeds=(0, 1), ops_per_core=12)
    assert [spec.key() for spec in document.specs] == \
        [spec.key() for spec in sweep.expand()]
    assert all(isinstance(spec, RunSpec) for spec in document.specs)


def test_litmus_section_expands_programs_by_seed():
    document = experiment_from_dict({
        "schema": 1, "name": "l",
        "litmus": {"programs": ["message-passing", "store-buffering"],
                   "seeds": [0, 7]}})
    assert len(document.specs) == 4
    assert {program.name for program, _ in document.litmus_checks} == \
        {"message-passing", "store-buffering"}
    indices = [index for _, index in document.litmus_checks]
    assert indices == [0, 1, 2, 3]


# ---------------------------------------------------------------------------
# Strict validation
# ---------------------------------------------------------------------------

def test_rejects_unknown_top_level_key():
    with pytest.raises(DocumentError, match="unknown key"):
        experiment_from_dict(_minimal(extra_section={}))


def test_rejects_missing_schema():
    with pytest.raises(DocumentError, match="schema"):
        experiment_from_dict({"name": "x", "runs": []})


def test_rejects_future_schema():
    with pytest.raises(DocumentError, match="unsupported document"):
        experiment_from_dict(_minimal(schema=DOCUMENT_SCHEMA + 1))


def test_rejects_empty_document():
    with pytest.raises(DocumentError, match="describes no work"):
        experiment_from_dict({"schema": 1, "name": "x"})


def test_rejects_run_with_both_shapes():
    with pytest.raises(DocumentError, match="exactly one"):
        experiment_from_dict({
            "schema": 1, "name": "x",
            "runs": [{"benchmark": "fft", "builder": "scorpio"}]})


def test_rejects_unknown_builder_and_protocol():
    with pytest.raises(DocumentError, match="unknown builder"):
        experiment_from_dict({"schema": 1, "name": "x",
                              "runs": [{"builder": "warp-drive"}]})
    with pytest.raises(DocumentError, match="unknown protocol"):
        experiment_from_dict({
            "schema": 1, "name": "x",
            "runs": [{"benchmark": "fft", "protocol": "mesi"}]})


def test_rejects_unknown_benchmark_and_builder_param():
    with pytest.raises(DocumentError, match="unknown benchmark"):
        experiment_from_dict({"schema": 1, "name": "x",
                              "runs": [{"benchmark": "doom"}]})
    with pytest.raises(DocumentError, match="unknown builder parameter"):
        experiment_from_dict({
            "schema": 1, "name": "x",
            "runs": [{"builder": "inso", "params": {"window": 3}}]})


def test_rejects_undefined_config_reference():
    with pytest.raises(DocumentError, match="unknown config"):
        experiment_from_dict({
            "schema": 1, "name": "x",
            "runs": [{"builder": "scorpio", "config": "ghost"}]})


def test_rejects_bad_config_override_key():
    with pytest.raises(DocumentError, match="unknown key"):
        experiment_from_dict({
            "schema": 1, "name": "x",
            "configs": {"c": {"preset": "chip_36core",
                              "overrides": {"noc": {"wdith": 4}}}},
            "runs": [{"builder": "scorpio", "config": "c"}]})


def test_rejects_unknown_litmus_program():
    with pytest.raises(DocumentError, match="unknown litmus program"):
        experiment_from_dict({"schema": 1, "name": "x",
                              "litmus": {"programs": ["nonsense"]}})


def test_variant_preset_requires_dimensions():
    with pytest.raises(DocumentError, match="width"):
        experiment_from_dict({
            "schema": 1, "name": "x",
            "configs": {"c": {"preset": "variant"}},
            "runs": [{"builder": "scorpio", "config": "c"}]})


def test_mesh_override_recomputes_mc_nodes():
    """Overriding mesh dimensions through overrides.noc must not keep
    the preset's stale memory-controller placement."""
    document = experiment_from_dict({
        "schema": 1, "name": "x",
        "configs": {"c": {"preset": "chip_36core",
                          "overrides": {"noc": {"width": 4,
                                                "height": 4}}}},
        "runs": [{"builder": "scorpio", "config": "c"}]})
    from repro.systems.base import default_mc_nodes
    config = document.configs["c"]
    assert config.mc_nodes == default_mc_nodes(4, 4)


def test_mesh_override_recomputes_notification_window():
    """Growing the mesh through overrides.noc must also raise the
    notification window to the new latency bound (ChipConfig.variant
    does this for preset dimensions) — otherwise the document loads but
    every run crashes at system-build time.  An explicitly pinned
    window is respected."""
    from repro.noc.config import NotificationConfig
    document = experiment_from_dict({
        "schema": 1, "name": "x",
        "configs": {"c": {"preset": "chip_36core",
                          "overrides": {"noc": {"width": 10,
                                                "height": 10}}}},
        "runs": [{"builder": "scorpio", "config": "c"}]})
    config = document.configs["c"]
    assert config.notification.window >= \
        NotificationConfig.minimum_window(10, 10)
    pinned = experiment_from_dict({
        "schema": 1, "name": "x",
        "configs": {"c": {"preset": "chip_36core",
                          "overrides": {"noc": {"width": 4, "height": 4},
                                        "notification": {"window": 9}}}},
        "runs": [{"builder": "scorpio", "config": "c"}]})
    assert pinned.configs["c"].notification.window == 9


@needs_toml
def test_load_errors_name_the_file(tmp_path):
    path = tmp_path / "broken.toml"
    path.write_text("schema = 1\nname = 'x'\nrusn = 3\n")
    with pytest.raises(DocumentError, match="broken.toml"):
        load_experiment(path)
    missing = tmp_path / "absent.toml"
    with pytest.raises(DocumentError, match="cannot read"):
        load_experiment(missing)
    bad_json = tmp_path / "broken.json"
    bad_json.write_text("{not json")
    with pytest.raises(DocumentError, match="invalid JSON"):
        load_experiment(bad_json)


# ---------------------------------------------------------------------------
# [report] table (additive, no schema bump)
# ---------------------------------------------------------------------------

def test_report_table_defaults_and_resolved_round_trip():
    from repro.sim.journal import DEFAULT_CAPACITY, DEFAULT_SAMPLE_INTERVAL
    document = experiment_from_dict(_minimal(report={}))
    assert document.report == {"journal_capacity": DEFAULT_CAPACITY,
                               "sample_interval": DEFAULT_SAMPLE_INTERVAL,
                               "journal_tail": 40}
    assert document.resolved()["report"] == document.report
    # Documents without the table resolve without the key (old
    # documents keep loading and keep resolving identically).
    assert "report" not in experiment_from_dict(_minimal()).resolved()


def test_report_table_overrides():
    document = experiment_from_dict(_minimal(
        report={"journal_capacity": 16, "sample_interval": 8,
                "journal_tail": 5}))
    assert document.report == {"journal_capacity": 16,
                               "sample_interval": 8, "journal_tail": 5}


def test_report_table_rejects_unknown_key_and_bad_values():
    with pytest.raises(DocumentError, match="unknown key"):
        experiment_from_dict(_minimal(report={"capacity": 5}))
    with pytest.raises(DocumentError, match="journal_capacity"):
        experiment_from_dict(_minimal(report={"journal_capacity": 0}))
    with pytest.raises(DocumentError, match="sample_interval"):
        experiment_from_dict(_minimal(report={"sample_interval": 0}))
    with pytest.raises(DocumentError, match="journal_tail"):
        experiment_from_dict(_minimal(report={"journal_tail": -1}))
    with pytest.raises(DocumentError, match="wrong type"):
        experiment_from_dict(_minimal(report={"sample_interval": "x"}))


def test_report_table_does_not_change_spec_expansion():
    plain = experiment_from_dict(_minimal())
    with_report = experiment_from_dict(_minimal(report={}))
    assert [spec.key() for spec in plain.specs] == \
        [spec.key() for spec in with_report.specs]
