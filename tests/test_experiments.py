"""The experiment orchestration layer: specs, cache, sweep runner."""

import json

import pytest

from repro.core.api import compare_protocols, run_benchmark
from repro.core.config import ChipConfig
from repro.experiments import (ResultCache, RunSpec, Sweep, as_cache,
                               code_version, executing, run_sweep,
                               sweep_compare)

# A deliberately tiny regime so every test runs in well under a second
# per simulation.
KNOBS = dict(ops_per_core=8, workload_scale=0.02, think_scale=10.0)


@pytest.fixture(autouse=True)
def isolated_execution_context(monkeypatch):
    """Shield these tests from an exported REPRO_JOBS/REPRO_CACHE_DIR:
    run_sweep falls back to the process context, and an ambient cache
    directory would both change behaviour and be polluted."""
    import repro.experiments.context as context
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    monkeypatch.setattr(context, "_context", context.ExecutionContext())


def tiny_spec(**overrides):
    params = dict(benchmark="fft", protocol="scorpio",
                  config=ChipConfig.variant(3, 3), seed=0, **KNOBS)
    params.update(overrides)
    return RunSpec(**params)


def canonical(results):
    """Byte-exact serialized form of a list of SweepResults."""
    return json.dumps([r.payload() for r in results], sort_keys=True)


class TestFingerprint:
    def test_stable_across_calls(self):
        assert tiny_spec().fingerprint() == tiny_spec().fingerprint()

    def test_config_change_changes_fingerprint(self):
        wide = tiny_spec(config=ChipConfig.variant(3, 3, goreq_vcs=6))
        assert tiny_spec().fingerprint() != wide.fingerprint()

    def test_every_knob_is_keyed(self):
        base = tiny_spec().fingerprint()
        assert tiny_spec(seed=1).fingerprint() != base
        assert tiny_spec(ops_per_core=9).fingerprint() != base
        assert tiny_spec(think_scale=11.0).fingerprint() != base
        assert tiny_spec(max_cycles=123_456).fingerprint() != base
        assert tiny_spec(benchmark="lu").fingerprint() != base
        assert tiny_spec(protocol="lpd").fingerprint() != base

    def test_code_version_is_keyed(self):
        spec = tiny_spec()
        assert spec.fingerprint(code_version="aaa") \
            != spec.fingerprint(code_version="bbb")

    def test_label_is_not_keyed(self):
        assert tiny_spec(label="x").fingerprint() == tiny_spec().fingerprint()

    def test_profile_object_equals_name(self):
        from repro.workloads.suites import profile
        assert tiny_spec(benchmark=profile("fft")).fingerprint() \
            == tiny_spec(benchmark="fft").fingerprint()


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("ab" * 32) is None
        cache.put("ab" * 32, {"x": 1})
        assert cache.get("ab" * 32) == {"x": 1}
        assert cache.stats() == {"hits": 1, "misses": 1, "entries": 1}

    def test_corrupt_file_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("cd" * 32, {"x": 1})
        cache._path("cd" * 32).write_text("{truncated", encoding="utf-8")
        assert cache.get("cd" * 32) is None

    def test_empty_cache_is_not_falsy(self, tmp_path):
        # run_sweep guards with `is not None`; an empty cache must still
        # count as "caching enabled".
        assert as_cache(tmp_path) is not None
        assert bool(as_cache(tmp_path))

    def test_as_cache_coercions(self, tmp_path):
        assert as_cache(None) is None
        assert as_cache(False) is None
        cache = ResultCache(tmp_path)
        assert as_cache(cache) is cache
        assert as_cache(str(tmp_path)).directory == tmp_path


class TestSweepExpansion:
    def test_matrix_order_and_size(self):
        sweep = Sweep(benchmarks=("fft", "lu"), protocols=("lpd", "scorpio"),
                      seeds=(0, 1))
        specs = sweep.expand()
        assert len(specs) == len(sweep) == 8
        assert [(s.benchmark, s.protocol, s.seed) for s in specs[:3]] == [
            ("fft", "lpd", 0), ("fft", "lpd", 1), ("fft", "scorpio", 0)]

    def test_labelled_configs(self):
        configs = {"base": ChipConfig.variant(3, 3),
                   "wide": ChipConfig.variant(3, 3, goreq_vcs=6)}
        sweep = Sweep(benchmarks=("fft",), configs=configs)
        assert [s.label for s in sweep.expand()] == ["base", "wide"]


class TestRunSweep:
    def test_matches_run_benchmark(self):
        spec = tiny_spec()
        direct = run_benchmark("fft", protocol="scorpio",
                               config=ChipConfig.variant(3, 3), **KNOBS)
        [swept] = run_sweep([spec], cache=False)
        assert swept.runtime == direct.runtime
        assert swept.stats == direct.stats
        assert swept.to_run_result().breakdown() == direct.breakdown()

    def test_uncached_results_still_carry_fingerprints(self):
        # Regression: the uncached path used to elide fingerprints as "",
        # producing result envelopes that could never be matched back to
        # the point that produced them.
        spec = tiny_spec()
        [swept] = run_sweep([spec], cache=False)
        assert swept.fingerprint == spec.fingerprint(
            code_version=code_version())
        assert swept.payload()["fingerprint"] == swept.fingerprint

    def test_uncached_fingerprint_matches_cached_identity(self, tmp_path):
        # The same point swept uncached and cached must report the same
        # identity, so later cache lookups can recognise archived
        # envelopes.
        [uncached] = run_sweep([tiny_spec()], cache=False)
        [cached] = run_sweep([tiny_spec()], cache=tmp_path)
        assert uncached.fingerprint == cached.fingerprint

    def test_cache_hit_is_byte_identical_to_fresh_run(self, tmp_path):
        specs = [tiny_spec(), tiny_spec(protocol="lpd")]
        fresh = run_sweep(specs, cache=tmp_path)
        assert [r.cached for r in fresh] == [False, False]
        recalled = run_sweep(specs, cache=tmp_path)
        assert [r.cached for r in recalled] == [True, True]
        assert canonical(recalled) == canonical(fresh)

    def test_parallel_agrees_with_serial(self, tmp_path):
        sweep = Sweep(benchmarks=("fft", "lu"),
                      protocols=("lpd", "scorpio"),
                      configs=ChipConfig.variant(3, 3), seeds=(0, 1),
                      **KNOBS)
        serial = run_sweep(sweep, jobs=1, cache=False)
        parallel = run_sweep(sweep, jobs=4, cache=False)
        assert canonical(parallel) == canonical(serial)

    def test_parallel_populates_the_same_cache(self, tmp_path):
        sweep = Sweep(benchmarks=("fft",), protocols=("lpd", "scorpio"),
                      configs=ChipConfig.variant(3, 3), **KNOBS)
        run_sweep(sweep, jobs=2, cache=tmp_path)
        recalled = run_sweep(sweep, jobs=1, cache=tmp_path)
        assert all(r.cached for r in recalled)

    def test_duplicate_specs_simulate_once_within_a_batch(self, tmp_path):
        cache = ResultCache(tmp_path)
        results = run_sweep([tiny_spec(label="a"), tiny_spec(label="b")],
                            cache=cache)
        # one simulation, second occurrence aliased to it
        assert cache.misses == 2 and cache.stats()["entries"] == 1
        assert [r.cached for r in results] == [False, True]
        assert results[0].payload() == results[1].payload()
        assert (results[0].label, results[1].label) == ("a", "b")

    def test_cache_hit_carries_the_requesting_label(self, tmp_path):
        # label is display bookkeeping, not part of the fingerprint: a
        # recall must report the *current* spec's label, not whichever
        # label first populated the cache.
        run_sweep([tiny_spec(label="first")], cache=tmp_path)
        [result] = run_sweep([tiny_spec(label="second")], cache=tmp_path)
        assert result.cached
        assert result.label == "second"

    def test_cache_invalidates_when_config_changes(self, tmp_path):
        run_sweep([tiny_spec()], cache=tmp_path)
        changed = tiny_spec(
            config=ChipConfig.variant(3, 3, goreq_vcs=6))
        [result] = run_sweep([changed], cache=tmp_path)
        assert not result.cached

    def test_cache_invalidates_when_code_version_changes(self, tmp_path,
                                                         monkeypatch):
        run_sweep([tiny_spec()], cache=tmp_path)
        monkeypatch.setattr("repro.experiments.sweep.code_version",
                            lambda: "different-source-digest")
        [result] = run_sweep([tiny_spec()], cache=tmp_path)
        assert not result.cached

    def test_results_keep_spec_order_with_partial_hits(self, tmp_path):
        warm = tiny_spec(protocol="lpd")
        run_sweep([warm], cache=tmp_path)
        results = run_sweep([tiny_spec(), warm, tiny_spec(seed=3)],
                            cache=tmp_path)
        assert [r.cached for r in results] == [False, True, False]
        assert [r.protocol for r in results] == ["scorpio", "lpd",
                                                 "scorpio"]
        assert results[2].seed == 3


class TestCompareIntegration:
    def test_sweep_compare_matches_serial_compare_protocols(self, tmp_path):
        config = ChipConfig.variant(3, 3)
        serial = compare_protocols("fft", ("lpd", "scorpio"), config=config,
                                   **KNOBS)
        # jobs=2 + cold cache, then a pure-cache recall: all three paths
        # must agree exactly.
        with executing(jobs=2, cache=tmp_path):
            pooled = compare_protocols("fft", ("lpd", "scorpio"),
                                       config=config, **KNOBS)
            recalled = compare_protocols("fft", ("lpd", "scorpio"),
                                         config=config, **KNOBS)
        for proto in ("lpd", "scorpio"):
            assert pooled[proto] == serial[proto]
            assert recalled[proto] == serial[proto]


class TestContext:
    def test_environment_defaults(self, monkeypatch, tmp_path):
        from repro.experiments.context import ExecutionContext
        monkeypatch.setenv("REPRO_JOBS", "5")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        ctx = ExecutionContext.from_environment()
        assert ctx.jobs == 5
        assert ctx.cache.directory == tmp_path

    def test_executing_restores_previous_context(self):
        from repro.experiments import get_context
        before = get_context()
        with executing(jobs=7):
            assert get_context().jobs == 7
        assert get_context() is before


class TestCodeVersion:
    def test_memoized_and_plausible(self):
        version = code_version()
        assert version == code_version()
        assert len(version) == 64
        int(version, 16)
