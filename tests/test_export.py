"""CSV export tests (repro.analysis.export)."""

import pytest

from repro.analysis.export import (FigureData, Series, export_stats,
                                   normalized_series, read_figure_csv)


class TestFigureData:
    def test_roundtrip(self, tmp_path):
        data = FigureData("fig6a", "benchmark", "normalized runtime")
        lpd = data.new_series("lpd")
        scorpio = data.new_series("scorpio")
        for name, value in (("barnes", 1.0), ("lu", 1.0)):
            lpd.add(name, value)
        scorpio.add("barnes", 0.95)
        scorpio.add("lu", 0.92)
        path = data.write_csv(tmp_path / "fig6a.csv")
        loaded = read_figure_csv(path)
        assert loaded.x_label == "benchmark"
        assert [s.name for s in loaded.series] == ["lpd", "scorpio"]
        assert loaded.series[1].points == {"barnes": 0.95, "lu": 0.92}

    def test_missing_points_stay_blank(self, tmp_path):
        data = FigureData("f", "x", "y")
        a = data.new_series("a")
        b = data.new_series("b")
        a.add("p1", 1.0)
        b.add("p2", 2.0)
        path = data.write_csv(tmp_path / "f.csv")
        loaded = read_figure_csv(path)
        assert loaded.series[0].points == {"p1": 1.0}
        assert loaded.series[1].points == {"p2": 2.0}

    def test_x_values_preserve_insertion_order(self):
        data = FigureData("f", "x", "y")
        s = data.new_series("s")
        for x in ("z", "a", "m"):
            s.add(x, 1.0)
        assert data.x_values() == ["z", "a", "m"]

    def test_creates_parent_dirs(self, tmp_path):
        data = FigureData("f", "x", "y")
        data.new_series("s").add("p", 1.0)
        path = data.write_csv(tmp_path / "deep" / "nested" / "f.csv")
        assert path.exists()

    def test_read_empty_csv_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            read_figure_csv(path)


class TestExportStats:
    def test_writes_sorted_rows(self, tmp_path):
        path = export_stats({"b.two": 2.0, "a.one": 1.0},
                            tmp_path / "stats.csv")
        lines = path.read_text().splitlines()
        assert lines[0] == "stat,value"
        assert lines[1].startswith("a.one")

    def test_prefix_filter(self, tmp_path):
        path = export_stats({"noc.flits": 5.0, "l2.hits": 3.0},
                            tmp_path / "stats.csv", prefixes=("noc.",))
        text = path.read_text()
        assert "noc.flits" in text
        assert "l2.hits" not in text


class TestNormalizedSeries:
    def test_normalizes_to_baseline(self):
        rows = {"barnes": {"lpd": 1000.0, "scorpio": 900.0},
                "lu": {"lpd": 2000.0, "scorpio": 1800.0}}
        data = normalized_series("fig6a", "benchmark", rows, "lpd")
        by_name = {s.name: s for s in data.series}
        assert by_name["lpd"].points == {"barnes": 1.0, "lu": 1.0}
        assert by_name["scorpio"].points["barnes"] == pytest.approx(0.9)

    def test_missing_baseline_rejected(self):
        with pytest.raises(ValueError, match="baseline"):
            normalized_series("f", "x", {"p": {"scorpio": 1.0}}, "lpd")

    def test_zero_baseline_rejected(self):
        with pytest.raises(ValueError, match="baseline"):
            normalized_series("f", "x", {"p": {"lpd": 0.0}}, "lpd")
