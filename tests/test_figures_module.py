"""Figure-regeneration module tests (repro.analysis.figures)."""

import pytest

from repro.analysis.figures import figure_ids, generate


class TestRegistry:
    def test_every_paper_artifact_covered(self):
        ids = figure_ids()
        for required in ("table1", "table2", "fig6a", "fig6b", "fig6c",
                         "fig7", "fig8a", "fig8b", "fig8c", "fig8d",
                         "fig9", "fig10"):
            assert required in ids

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError, match="unknown figure"):
            generate("fig0")


class TestStaticFigures:
    def test_table1(self):
        text = generate("table1")
        assert "6x6 mesh" in text
        assert "833 MHz" in text

    def test_table2(self):
        text = generate("table2")
        assert "SCORPIO" in text
        assert "Sequential consistency" in text

    def test_fig9(self):
        text = generate("fig9")
        assert "nic_router" in text
        assert "19.0" in text        # the NIC+router power slice
        assert "28.8" in text        # chip watts


class TestSimulatedFigures:
    """Quick-regime smoke runs of the simulation-backed figures."""

    def test_fig8d_notification_sweep(self):
        text = generate("fig8d")
        assert "1.000" in text       # normalized to the first point
        assert "bits" in text

    def test_fig10_pipelining(self):
        text = generate("fig10")
        # Pipelining must reduce service latency on every row.
        rows = [line for line in text.splitlines()
                if line and line[0].isdigit()]
        assert rows
        for row in rows:
            fields = row.split()
            non_pl, pl = float(fields[-3]), float(fields[-2])
            assert pl <= non_pl

    def test_fig6a_protocol_ordering(self):
        text = generate("fig6a")
        avg = next(line for line in text.splitlines()
                   if line.startswith("AVG"))
        _, lpd, ht, scorpio = avg.split()
        assert float(lpd) == pytest.approx(1.0)
        assert float(scorpio) < float(lpd)


class TestExtraFigures:
    def test_locks_figure(self):
        text = generate("locks")
        assert "SCORPIO" in text and "LPD-D" in text
        assert "Lock handoff" in text

    def test_fullbit_figure(self):
        text = generate("fullbit")
        rows = [line for line in text.splitlines()
                if line and line.split()[0] in ("barnes", "lu")]
        assert rows
        for row in rows:
            ratio = float(row.split()[-1])
            assert 0.85 < ratio < 1.15   # the "almost identical" claim
