"""Full-bit-vector directory tests (Sec. 5: the LPD ~ full-bit claim)."""

import pytest

from repro.coherence.directory import DirectoryConfig
from repro.coherence.mosi import State
from repro.cpu.trace import Trace, TraceOp
from repro.noc.config import NocConfig
from repro.systems.directory import DirectorySystem
from repro.workloads.synthetic import uniform_random_trace

LINE = 32
ADDR = 0x4000_0000


def small_system(traces=None, width=3, height=3, **kwargs):
    noc = NocConfig(width=width, height=height)
    if traces is not None:
        traces = list(traces) + [Trace([])] * (width * height - len(traces))
    return DirectorySystem(scheme="FULLBIT", traces=traces, noc=noc,
                           **kwargs)


def run_done(system, max_cycles=60_000):
    system.run_until_done(max_cycles)
    assert system.all_cores_finished()
    return system.engine.cycle


class TestFullbitConfig:
    def test_entry_bits_include_full_vector(self):
        cfg = DirectoryConfig(scheme="FULLBIT", n_nodes=36)
        assert cfg.entry_bits() == 2 + 6 + 36

    def test_wider_entries_mean_fewer_cached(self):
        full = DirectoryConfig(scheme="FULLBIT", n_nodes=64)
        lpd = DirectoryConfig(scheme="LPD", n_nodes=64, pointers=4)
        assert full.entry_bits() > lpd.entry_bits()
        assert full.entries_per_node() < lpd.entries_per_node()

    def test_entry_gap_grows_with_cores(self):
        # The full vector grows O(N); LPD pointers grow O(log N).
        def ratio(n):
            full = DirectoryConfig(scheme="FULLBIT", n_nodes=n)
            lpd = DirectoryConfig(scheme="LPD", n_nodes=n, pointers=4)
            return full.entry_bits() / lpd.entry_bits()

        assert ratio(256) > ratio(64) > ratio(16)


class TestFullbitCoherence:
    def test_read_then_write(self):
        system = small_system([
            Trace([TraceOp("R", ADDR, 1)]),
            Trace([TraceOp("R", ADDR, 1), TraceOp("W", ADDR, 400)]),
        ])
        run_done(system)
        assert system.l2s[0].state_of(ADDR) is State.I
        assert system.l2s[1].state_of(ADDR) is State.M

    def test_never_overflows(self):
        # All eight other cores share a line, then one writes: the full
        # vector invalidates each sharer individually, never broadcasts.
        readers = [Trace([TraceOp("R", ADDR, 1)]) for _ in range(8)]
        writer = [Trace([TraceOp("W", ADDR, 2500)])]
        system = small_system(readers + writer)
        run_done(system, 80_000)
        assert system.stats.counter("dir.pointer_overflows") == 0
        assert system.stats.counter("dir.lpd_broadcasts") == 0
        assert system.l2s[8].state_of(ADDR) is State.M
        for node in range(8):
            assert system.l2s[node].state_of(ADDR) is State.I

    def test_invalidates_exactly_the_sharers(self):
        readers = [Trace([TraceOp("R", ADDR, 1)]) for _ in range(3)]
        writer = [Trace([TraceOp("W", ADDR, 2000)])]
        system = small_system(readers + writer)
        run_done(system, 80_000)
        # 2 targeted invalidates (one reader is served by fwd_data).
        invals = system.stats.counter("dir.forwards.invalidate")
        assert 2 <= invals <= 3

    def test_random_soak_completes(self):
        traces = [uniform_random_trace(c, 12, 8, write_fraction=0.5,
                                       think=3, seed=19) for c in range(9)]
        system = small_system(traces)
        run_done(system, 150_000)

    def test_api_protocol_roundtrip(self):
        from repro.core import ChipConfig
        from repro.core.api import run_benchmark
        config = ChipConfig.variant(3, 3)
        result = run_benchmark("fft", protocol="fullbit", config=config,
                               ops_per_core=10, workload_scale=0.02,
                               think_scale=10.0)
        assert result.progress == 1.0
        assert result.protocol == "fullbit"


class TestFullbitVsLpdCapacity:
    def test_fullbit_misses_more_under_pressure(self):
        # Same tiny directory-cache budget: the wide full-bit entries
        # thrash while LPD still fits — the capacity side of the paper's
        # "almost identical" equation.
        noc = NocConfig(width=3, height=3)
        footprint = [TraceOp("R", ADDR + i * LINE * 9, 6)
                     for i in range(48)]
        misses = {}
        for scheme in ("FULLBIT", "LPD"):
            cfg = DirectoryConfig(scheme=scheme, n_nodes=9,
                                  total_cache_bytes=1024)
            system = DirectorySystem(
                scheme=scheme,
                traces=[Trace(list(footprint))] + [Trace([])] * 8,
                noc=noc, directory=cfg)
            run_done(system, 200_000)
            misses[scheme] = system.stats.counter("dir.cache_misses")
        assert misses["FULLBIT"] >= misses["LPD"]
