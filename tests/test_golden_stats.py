"""Golden-trace regression suite for every registered system builder.

Each case runs one tiny, fully deterministic spec through
``execute_system_spec`` and compares cycle counts and message totals
against checked-in goldens.  The point is to make *silent* cycle-level
behaviour changes loud: a hot-path refactor that reorders arbitration,
changes a latency, or perturbs trace generation will move at least one
of these numbers.

When a change is *intentional* (a model fix, a new timing parameter),
regenerate the table:

    PYTHONPATH=src python -m pytest tests/test_golden_stats.py --tb=line

then update GOLDEN with the values the failure output reports (or rerun
the specs by hand via ``execute_system_spec``) and say why in the commit.

The regime mirrors tests/test_experiments.py: a 3x3 mesh and single-digit
ops per core, so the full suite stays well under a couple of seconds.
"""

import pytest

from repro.core.config import ChipConfig
from repro.experiments import SystemSpec, builder_names, execute_system_spec

BENCH = {"kind": "benchmark", "name": "fft", "ops_per_core": 8,
         "workload_scale": 0.02, "think_scale": 10.0, "seed": 0}


def _cfg():
    return ChipConfig.variant(3, 3)


def _specs():
    cfg = _cfg()
    return {
        "scorpio": SystemSpec("scorpio", cfg, workload=BENCH),
        "directory-lpd": SystemSpec("directory", cfg,
                                    params={"scheme": "LPD"},
                                    workload=BENCH),
        "directory-ht-incf": SystemSpec("directory", cfg,
                                        params={"scheme": "HT",
                                                "incf": True},
                                        workload=BENCH),
        "multimesh": SystemSpec("multimesh", cfg,
                                params={"n_meshes": 2}, workload=BENCH),
        "tokenb": SystemSpec("tokenb", cfg, workload=BENCH),
        "inso": SystemSpec("inso", cfg,
                           params={"expiration_window": 40},
                           workload=BENCH),
        "timestamp": SystemSpec("timestamp", cfg, workload=BENCH),
        "uncorq": SystemSpec("uncorq", cfg, workload=BENCH),
        "scorpio-locks": SystemSpec("scorpio", cfg,
                                    workload={"kind": "locks",
                                              "acquisitions_per_core": 2,
                                              "seed": 1}),
        "scorpio-barrier": SystemSpec("scorpio", cfg,
                                      workload={"kind": "barrier",
                                                "phases": 2, "seed": 2}),
        "uncorq-lone-write": SystemSpec("uncorq", cfg,
                                        workload={"kind": "lone_write"}),
        "litmus-mp": SystemSpec("litmus", cfg,
                                params={"name": "message-passing",
                                        "threads": [[["W", "x"],
                                                     ["W", "y"]],
                                                    [["R", "y"],
                                                     ["R", "x"]]]}),
    }


# case -> {runtime (cycles), completed_ops, flits transmitted on the main
# mesh, coherence requests injected}.  Regenerate deliberately; never to
# "make the test pass".
GOLDEN = {
    "scorpio": {"runtime": 708, "completed_ops": 72,
                "flits": 1783, "requests": 71},
    "directory-lpd": {"runtime": 947, "completed_ops": 72,
                      "flits": 953, "requests": 142},
    "directory-ht-incf": {"runtime": 963, "completed_ops": 72,
                          "flits": 1170, "requests": 213},
    "multimesh": {"runtime": 708, "completed_ops": 72,
                  "flits": 1783, "requests": 71},
    "tokenb": {"runtime": 658, "completed_ops": 72,
               "flits": 1783, "requests": 71},
    "inso": {"runtime": 742, "completed_ops": 72,
             "flits": 1783, "requests": 71},
    "timestamp": {"runtime": 811, "completed_ops": 72,
                  "flits": 1783, "requests": 71},
    "uncorq": {"runtime": 658, "completed_ops": 72,
               "flits": 1783, "requests": 71},
    "scorpio-locks": {"runtime": 820, "completed_ops": 90,
                      "flits": 2193, "requests": 87},
    "scorpio-barrier": {"runtime": 766, "completed_ops": 108,
                        "flits": 2219, "requests": 88},
    "uncorq-lone-write": {"runtime": 106, "completed_ops": 1,
                          "flits": 23, "requests": 1},
    "litmus-mp": {"runtime": 243, "completed_ops": 4,
                  "flits": 0, "requests": 0},
}


def test_every_registered_builder_has_a_golden_case():
    """Registering a new builder must come with a golden lock."""
    covered = {spec.builder for spec in _specs().values()}
    assert covered == set(builder_names()), (
        "builders without golden coverage: "
        f"{sorted(set(builder_names()) - covered)}")


@pytest.mark.parametrize("case", sorted(GOLDEN))
def test_golden_stats(case):
    spec = _specs()[case]
    outcome = execute_system_spec(spec)
    observed = {
        "runtime": outcome.runtime,
        "completed_ops": outcome.completed_ops,
        "flits": int(outcome.stats.get("noc.flits.transmitted", 0)),
        "requests": int(outcome.stats.get("nic.requests_sent", 0)),
    }
    assert observed == GOLDEN[case], (
        f"cycle-level behaviour changed for {case!r}: golden "
        f"{GOLDEN[case]}, observed {observed}.  If intentional, "
        "regenerate the GOLDEN table (see module docstring).")


def test_litmus_observations_are_stable():
    """The litmus builder's cached payload (observations) is golden too."""
    outcome = execute_system_spec(_specs()["litmus-mp"])
    assert outcome.extra["observations"] == [
        [0, 0, "W", "x", 1], [0, 1, "W", "y", 1],
        [1, 0, "R", "y", 0], [1, 1, "R", "x", 1]]
