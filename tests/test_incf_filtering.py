"""INCF in-network coherence filtering tests (Sec. 5.3 future work)."""

import pytest

from repro.coherence.messages import CoherenceRequest, DirForward, ReqKind
from repro.coherence.mosi import State
from repro.cpu.trace import Trace, TraceOp
from repro.noc.config import NocConfig
from repro.noc.filtering import (BroadcastFilter, broadcast_subtree,
                                 l2_interest_oracle, snoop_target)
from repro.noc.routing import LOCAL, broadcast_outports
from repro.ordering_baselines.systems import TokenBSystem
from repro.sim.stats import StatsRegistry
from repro.systems.directory import DirectorySystem
from repro.workloads.synthetic import uniform_random_trace

LINE = 32
ADDR = 0x4000_0000


def pad(traces, n):
    return list(traces) + [Trace([])] * (n - len(traces))


def run_done(system, max_cycles=120_000):
    system.run_until_done(max_cycles)
    assert system.all_cores_finished()
    return system.engine.cycle


class TestBroadcastSubtree:
    @pytest.mark.parametrize("width,height", [(3, 3), (4, 4), (6, 6)])
    def test_source_branches_partition_the_mesh(self, width, height):
        for src in range(width * height):
            outports = broadcast_outports(src, LOCAL, width, height)
            seen = []
            for port in outports:
                seen.extend(broadcast_subtree(src, port, width, height))
            assert sorted(seen) == list(range(width * height))

    def test_local_subtree_is_self(self):
        assert broadcast_subtree(7, LOCAL, 3, 3) == frozenset({7})

    def test_subtrees_disjoint(self):
        outports = broadcast_outports(4, LOCAL, 3, 3)
        trees = [broadcast_subtree(4, p, 3, 3) for p in outports]
        total = sum(len(t) for t in trees)
        assert total == len(frozenset().union(*trees)) == 9


class TestSnoopTarget:
    def test_coherence_request(self):
        req = CoherenceRequest(kind=ReqKind.GETS, addr=ADDR, requester=3)
        assert snoop_target(req) == (ADDR, 3)

    def test_put_is_exempt(self):
        req = CoherenceRequest(kind=ReqKind.PUT, addr=ADDR, requester=3)
        assert snoop_target(req) is None

    def test_ht_snoop_forward(self):
        req = CoherenceRequest(kind=ReqKind.GETX, addr=ADDR, requester=5)
        fwd = DirForward(request=req, action="snoop", home=0)
        assert snoop_target(fwd) == (ADDR, 5)

    def test_other_forwards_not_filterable(self):
        req = CoherenceRequest(kind=ReqKind.GETX, addr=ADDR, requester=5)
        fwd = DirForward(request=req, action="invalidate", home=0)
        assert snoop_target(fwd) is None


class TestBroadcastFilterUnit:
    def _filter(self, interested_nodes, always=()):
        return BroadcastFilter(
            3, 3, lambda node, addr: node in interested_nodes,
            always_interested=always, stats=StatsRegistry())

    def test_prunes_uninterested_branches(self):
        flt = self._filter({4})   # only the centre node cares
        req = CoherenceRequest(kind=ReqKind.GETS, addr=ADDR, requester=4)
        outports = broadcast_outports(4, LOCAL, 3, 3)
        kept = flt.prune(4, outports, req)
        assert kept == frozenset({LOCAL})
        assert flt.stats.counter("incf.branches_pruned") == 4

    def test_requester_branch_always_kept(self):
        flt = self._filter(set())          # nobody is interested...
        req = CoherenceRequest(kind=ReqKind.GETS, addr=ADDR, requester=0)
        outports = broadcast_outports(4, LOCAL, 3, 3)
        kept = flt.prune(4, outports, req)  # ...but node 0 still snoops
        trees = {p: broadcast_subtree(4, p, 3, 3) for p in outports}
        assert kept == frozenset(p for p in outports if 0 in trees[p])

    def test_always_interested_nodes_kept(self):
        flt = self._filter(set(), always={8})
        req = CoherenceRequest(kind=ReqKind.GETS, addr=ADDR, requester=8)
        kept = flt.prune(0, broadcast_outports(0, LOCAL, 3, 3), req)
        trees = {p: broadcast_subtree(0, p, 3, 3)
                 for p in broadcast_outports(0, LOCAL, 3, 3)}
        assert all(8 in trees[p] or p == LOCAL and False for p in kept) \
            or kept  # every kept branch leads to node 8
        for port in kept:
            assert 8 in trees[port]

    def test_disabled_filter_is_identity(self):
        flt = self._filter(set())
        flt.enabled = False
        req = CoherenceRequest(kind=ReqKind.GETS, addr=ADDR, requester=0)
        outports = broadcast_outports(4, LOCAL, 3, 3)
        assert flt.prune(4, outports, req) == outports

    def test_unknown_payload_not_filtered(self):
        flt = self._filter(set())
        outports = broadcast_outports(4, LOCAL, 3, 3)
        assert flt.prune(4, outports, object()) == outports


def _ht_system(traces, incf, width=3, height=3):
    noc = NocConfig(width=width, height=height)
    return DirectorySystem(scheme="HT", traces=pad(traces, width * height),
                           noc=noc, incf=incf)


class TestIncfOnHt:
    def test_coherence_preserved(self):
        system = _ht_system([
            Trace([TraceOp("W", ADDR, 1)]),
            Trace([TraceOp("R", ADDR, 600)]),
        ], incf=True)
        run_done(system)
        assert system.l2s[0].state_of(ADDR) is State.O
        assert system.l2s[1].state_of(ADDR) is State.S

    def test_saves_links(self):
        # Two cores touching disjoint lines: each snoop broadcast only
        # needs the requester (and nothing else caches the region).
        system = _ht_system([
            Trace([TraceOp("R", ADDR + i * LINE, 1 + i * 50)
                   for i in range(8)]),
            Trace([TraceOp("R", ADDR + 0x100000 + i * LINE, 1 + i * 50)
                   for i in range(8)]),
        ], incf=True)
        run_done(system)
        assert system.stats.counter("incf.links_saved") > 0
        assert system.stats.counter("incf.broadcasts_trimmed") > 0

    def test_same_outcome_as_unfiltered(self):
        def build(incf):
            traces = [uniform_random_trace(c, 10, 8, write_fraction=0.5,
                                           think=4, seed=31)
                      for c in range(9)]
            return _ht_system(traces, incf=incf)

        base = build(False)
        run_done(base, 200_000)
        filtered = build(True)
        run_done(filtered, 200_000)
        for node in range(9):
            for line in range(8):
                addr = ADDR + line * LINE
                assert (base.l2s[node].state_of(addr)
                        is filtered.l2s[node].state_of(addr)), \
                    f"state diverged at node {node} line {line}"
        assert (base.total_completed_ops()
                == filtered.total_completed_ops())


class TestIncfOnTokenB:
    def test_soak_and_savings(self):
        noc = NocConfig(width=3, height=3)
        traces = [uniform_random_trace(c, 10, 8, write_fraction=0.4,
                                       think=5, seed=37) for c in range(9)]
        system = TokenBSystem(traces=traces, noc=noc, incf=True)
        run_done(system, 300_000)
        assert system.stats.counter("incf.links_saved") > 0

    def test_mc_branches_never_pruned(self):
        # A lone write to an uncached line: the broadcast must still
        # reach the snoopy memory controller that owns the address.
        noc = NocConfig(width=3, height=3)
        system = TokenBSystem(traces=pad([
            Trace([TraceOp("W", ADDR, 1)]),
        ], 9), noc=noc, incf=True)
        run_done(system)
        assert system.l2s[0].state_of(ADDR).is_owner
        assert system.stats.counter("mc.dram_reads") == 1


class TestFilterTable:
    def _oracle(self, interested):
        return lambda node, addr: (node, addr // 4096) in interested

    def test_rejects_bad_parameters(self):
        from repro.noc.filtering import FilterTable
        with pytest.raises(ValueError):
            FilterTable(lambda n, a: True, capacity=0)
        with pytest.raises(ValueError):
            FilterTable(lambda n, a: True, region_bytes=3000)

    def test_tracked_region_answers_oracle(self):
        from repro.noc.filtering import FilterTable
        table = FilterTable(self._oracle(set()), capacity=4)
        # First touch admits the region; a repeat query can answer.
        assert table(0, 0x1000) is True      # conservative (not tracked)
        assert table(0, 0x1000) is False     # now tracked: oracle says no
        assert table.conservative_fallbacks == 1

    def test_capacity_overflow_is_conservative(self):
        from repro.noc.filtering import FilterTable
        table = FilterTable(self._oracle(set()), capacity=2)
        regions = [0x0000, 0x2000, 0x4000, 0x6000]
        for addr in regions:
            table(0, addr)
        # Cycling through 4 regions with 2 entries: every fresh query
        # falls back to "interested" (forward).
        assert table(0, regions[0]) is True
        assert table.conservative_fallbacks >= 4
        assert table.tracked_regions() <= 2

    def test_lru_keeps_hot_region(self):
        from repro.noc.filtering import FilterTable
        table = FilterTable(self._oracle(set()), capacity=2)
        hot = 0x1000
        table(0, hot)
        for addr in (0x3000, hot, 0x5000, hot, 0x7000, hot):
            table(0, addr)
        # The hot region stayed tracked, so it answers from the oracle.
        assert table(0, hot) is False

    def test_finite_table_saves_less_than_oracle(self):
        def run(capacity):
            noc = NocConfig(width=3, height=3)
            traces = [uniform_random_trace(c, 24, 12, write_fraction=0.4,
                                           think=4, seed=61)
                      for c in range(9)]
            system = DirectorySystem(scheme="HT", traces=pad(traces, 9),
                                     noc=noc, incf=True,
                                     incf_table_capacity=capacity)
            run_done(system, 300_000)
            return system.stats.counter("incf.links_saved")

        noc = NocConfig(width=3, height=3)
        traces = [uniform_random_trace(c, 24, 12, write_fraction=0.4,
                                       think=4, seed=61) for c in range(9)]
        oracle_system = DirectorySystem(scheme="HT",
                                        traces=pad(traces, 9),
                                        noc=noc, incf=True)
        run_done(oracle_system, 300_000)
        oracle_saved = oracle_system.stats.counter("incf.links_saved")
        tiny = run(1)
        big = run(256)
        assert tiny <= big <= oracle_saved
        assert big > 0

    def test_finite_table_preserves_coherence(self):
        noc = NocConfig(width=3, height=3)
        system = DirectorySystem(scheme="HT", traces=pad([
            Trace([TraceOp("W", ADDR, 1)]),
            Trace([TraceOp("R", ADDR, 600)]),
        ], 9), noc=noc, incf=True, incf_table_capacity=1)
        run_done(system)
        assert system.l2s[0].state_of(ADDR) is State.O
        assert system.l2s[1].state_of(ADDR) is State.S
