"""Unit tests for INSO's slot arithmetic and expiry machinery."""

import pytest

from repro.noc.config import NocConfig, NotificationConfig
from repro.ordering_baselines.inso import (ExpiryNotice,
                                           InsoNetworkInterface,
                                           OrderedPayload)


def make_nic(node=0, n=9, window=20):
    noc = NocConfig(width=3, height=3)
    notif = NotificationConfig(window=13)
    return InsoNetworkInterface(node, noc, notif,
                                expiration_window=window)


class TestSlotAssignment:
    def test_slots_stride_by_node_count(self):
        nic = make_nic(node=2)
        nic.send_request(object())
        nic.send_request(object())
        slots = [p.payload.slot for p in nic._inject_queues[list(
            nic._inject_queues)[0]]]
        assert slots == [2, 11]

    def test_unicast_rejected(self):
        nic = make_nic()
        with pytest.raises(ValueError):
            nic.send_request(object(), dst=4)

    def test_used_slots_recorded(self):
        nic = make_nic(node=1)
        nic.send_request(object())
        assert nic._recent_used == [1]


class TestExpiry:
    def test_expiry_covers_horizon_and_skips_used(self):
        nic = make_nic(node=0)
        nic.peers = [nic]
        nic.send_request(object())          # uses slot 0
        nic._broadcast_expiry(cycle=100)
        # The frontier update arrives after the expiry latency.
        (when, node, through, used) = nic._future_frontiers[-1]
        assert node == 0
        assert when == 100 + nic.expiry_latency
        assert 0 in used                    # slot 0 was used, not expired
        assert through >= nic.n_nodes * nic.expiry_batch

    def test_next_slot_jumps_past_expired(self):
        nic = make_nic(node=3)
        nic.peers = [nic]
        before = nic._my_next_slot
        nic._broadcast_expiry(cycle=0)
        after = nic._my_next_slot
        assert after > before
        assert after % nic.n_nodes == 3     # still our own slot stripe

    def test_frontier_applies_after_latency(self):
        nic = make_nic(node=0)
        nic.peers = [nic]
        nic._broadcast_expiry(cycle=0)
        assert nic._expiry_frontier[0] == -1
        nic.step(nic.expiry_latency + 1)
        assert nic._expiry_frontier[0] >= 0


class TestDelivery:
    def test_skips_expired_slots(self):
        nic = make_nic(node=0)
        delivered = []
        nic.add_request_listener(
            lambda payload, sid, cycle, arrival: delivered.append(payload))
        # Mark slots 0..17 expired for all owners, none used.
        for owner in range(nic.n_nodes):
            nic._expiry_frontier[owner] = 17
        nic._deliver_ordered(cycle=50)
        assert nic._expected_slot == 18
        assert not delivered

    def test_waits_for_known_used_slot(self):
        nic = make_nic(node=0)
        for owner in range(nic.n_nodes):
            nic._expiry_frontier[owner] = 100
        nic._known_used[4].add(4)           # slot 4 carries a request
        nic._deliver_ordered(cycle=50)
        assert nic._expected_slot == 4      # stopped at the used slot

    def test_ordered_payload_stamp_passthrough(self):
        class Inner:
            def __init__(self):
                self.stamps = {}

            def stamp(self, name, cycle):
                self.stamps[name] = cycle

        inner = Inner()
        payload = OrderedPayload(slot=3, inner=inner)
        payload.stamp("inject", 42)
        assert inner.stamps == {"inject": 42}

    def test_never_quiesces(self):
        assert make_nic().idle() is False
