"""Observability contract tests: the journal and sampler are strictly
side-channel.

The hard contract (ISSUE 9 / docs/architecture.md "Observability"):

* attaching an :class:`~repro.sim.journal.EventJournal` and/or
  :class:`~repro.sim.journal.MeshSampler` — at *any* capacity or
  interval — must leave the canonical ``SweepResult`` payload
  byte-identical to an uninstrumented run, for **every** registered
  system builder (the journal-flavoured sibling of
  ``tests/test_quiescence_diff.py``);
* the journal's event stream is itself kernel-invariant: quiescence on
  and off record the same events at the same simulated cycles;
* journal state rides through ``snapshot_system``/``restore_system``
  checkpoints, and a resumed run's journal equals an uninterrupted one;
* the ring evicts oldest-first and counts what it dropped.
"""

import json

import pytest

from repro.core.config import ChipConfig
from repro.experiments import SystemSpec, builder_names, execute_system_spec
from repro.experiments.sweep import SweepResult
from repro.noc import reset_packet_ids
from repro.sim.engine import forced_quiescence
from repro.sim.journal import (EventJournal, MeshSampler,
                               attach_observability, system_routers)

BENCH = {"kind": "benchmark", "name": "fft", "ops_per_core": 8,
         "workload_scale": 0.02, "think_scale": 10.0, "seed": 0}


def _cfg():
    return ChipConfig.variant(3, 3)


def _specs():
    """One spec per registered builder (mirrors test_quiescence_diff)."""
    cfg = _cfg()
    return {
        "scorpio": SystemSpec("scorpio", cfg, workload=BENCH),
        "directory-lpd": SystemSpec("directory", cfg,
                                    params={"scheme": "LPD"},
                                    workload=BENCH),
        "multimesh": SystemSpec("multimesh", cfg,
                                params={"n_meshes": 2}, workload=BENCH),
        "tokenb": SystemSpec("tokenb", cfg, workload=BENCH),
        "inso": SystemSpec("inso", cfg,
                           params={"expiration_window": 40},
                           workload=BENCH),
        "timestamp": SystemSpec("timestamp", cfg, workload=BENCH),
        "uncorq": SystemSpec("uncorq", cfg, workload=BENCH),
        "litmus-mp": SystemSpec("litmus", cfg,
                                params={"name": "message-passing",
                                        "threads": [[["W", "x"],
                                                     ["W", "y"]],
                                                    [["R", "y"],
                                                     ["R", "x"]]]}),
    }


def test_every_registered_builder_is_covered():
    covered = {spec.builder for spec in _specs().values()}
    assert covered == set(builder_names()), (
        "builders without journal-identity coverage: "
        f"{sorted(set(builder_names()) - covered)}")


def _payload_bytes(spec, journal=None, sampler_interval=None) -> bytes:
    def instrument(system):
        sampler = None
        if sampler_interval is not None:
            sampler = MeshSampler(system_routers(system),
                                  interval=sampler_interval)
        attach_observability(system, journal, sampler)

    outcome = execute_system_spec(
        spec, instrument=instrument if (journal is not None
                                        or sampler_interval) else None)
    result = SweepResult.from_outcome(spec, "fingerprint-elided", outcome)
    return json.dumps(result.payload(), sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


@pytest.mark.parametrize("case", sorted(_specs()))
def test_journal_payload_identity(case):
    """Journal off / on / tiny capacity / with sampler — one payload."""
    spec = _specs()[case]
    plain = _payload_bytes(spec)
    journaled = _payload_bytes(spec, journal=EventJournal())
    tiny = _payload_bytes(spec, journal=EventJournal(capacity=4),
                          sampler_interval=32)
    assert plain == journaled == tiny, (
        f"{case!r}: attaching the journal/sampler changed the simulated "
        "outcome — observability must be side-channel only")


def _journal_records(spec, quiescence: bool):
    reset_packet_ids()
    journal = EventJournal(capacity=100_000)
    with forced_quiescence(quiescence):
        execute_system_spec(
            spec, instrument=lambda s: attach_observability(s, journal))
    return journal.records()


def test_journal_stream_is_kernel_invariant():
    """Quiescence on/off record identical event streams (packet ids are
    process-global, hence the reset before each run)."""
    spec = _specs()["scorpio"]
    on = _journal_records(spec, True)
    off = _journal_records(spec, False)
    assert on == off


def test_sampler_stream_is_kernel_invariant():
    """Fast-forwarded boundary samples read the frozen state the naive
    kernel would have observed — the streams must be equal."""
    spec = _specs()["scorpio"]
    streams = []
    for quiescence in (True, False):
        holder = {}

        def instrument(system, holder=holder):
            holder["sampler"] = MeshSampler(system_routers(system),
                                            interval=16)
            attach_observability(system, sampler=holder["sampler"])

        with forced_quiescence(quiescence):
            execute_system_spec(spec, instrument=instrument)
        streams.append(holder["sampler"].samples)
    assert streams[0] == streams[1]
    assert len(streams[0]) > 10   # the run actually got sampled


# ---------------------------------------------------------------------------
# Ring-buffer semantics
# ---------------------------------------------------------------------------

def test_ring_evicts_oldest_first():
    journal = EventJournal(capacity=3)
    for cycle in range(5):
        journal.record(cycle, "c", "s", "e", f"n={cycle}")
    assert len(journal) == 3
    assert journal.dropped == 2
    assert [r[0] for r in journal.records()] == [2, 3, 4]
    assert journal.tail(2) == [(3, "c", "s", "e", "n=3"),
                               (4, "c", "s", "e", "n=4")]
    assert journal.tail(99) == journal.records()
    assert journal.tail(0) == []


def test_capacity_validation():
    with pytest.raises(ValueError, match="capacity"):
        EventJournal(capacity=0)
    with pytest.raises(ValueError, match="interval"):
        MeshSampler([], interval=0)


def test_clear_resets_dropped():
    journal = EventJournal(capacity=1)
    journal.record(0, "c", "s", "e")
    journal.record(1, "c", "s", "e")
    assert journal.dropped == 1
    journal.clear()
    assert len(journal) == 0 and journal.dropped == 0


def test_state_dict_round_trip():
    journal = EventJournal(capacity=2)
    for cycle in range(4):
        journal.record(cycle, "c", "s", "e", str(cycle))
    clone = EventJournal()
    clone.load_state_dict(journal.state_dict())
    assert clone.capacity == 2
    assert clone.dropped == journal.dropped
    assert clone.records() == journal.records()
    # The restored deque keeps the ring bound.
    clone.record(9, "c", "s", "e")
    assert len(clone) == 2


# ---------------------------------------------------------------------------
# Checkpoint round-trip
# ---------------------------------------------------------------------------

def test_journal_rides_through_checkpoints(tmp_path):
    """Snapshot mid-run with the journal attached; the resumed run's
    journal and payload equal an uninterrupted instrumented run."""
    from repro.experiments.builders import (build_spec_system,
                                            collect_spec_outcome)
    from repro.sim.checkpoint import restore_system, snapshot_system

    spec = _specs()["scorpio"]

    # Same Engine.run call sequence as the checkpointed path (each run
    # records one "run start" event), so the journals compare equal.
    reset_packet_ids()
    straight_journal = EventJournal()
    straight_system = attach_observability(build_spec_system(spec),
                                           straight_journal)
    straight_system.run(300)
    straight_system.run_until_done(spec.max_cycles)
    straight = collect_spec_outcome(spec, straight_system)

    reset_packet_ids()
    system = attach_observability(build_spec_system(spec), EventJournal())
    system.run(300)
    assert len(system.engine.journal) > 0   # something already recorded
    path = str(tmp_path / "mid.ckpt")
    snapshot_system(system, path)

    _meta, restored = restore_system(path)
    # The attachment survived as one shared object across components.
    journal = restored.engine.journal
    assert isinstance(journal, EventJournal)
    assert journal.capacity == 1024
    assert journal.records() == \
        system.engine.journal.records()
    assert all(router.journal is journal
               for router in system_routers(restored))
    assert all(nic.journal is journal for nic in restored.nics)

    restored.run_until_done(spec.max_cycles)
    resumed = collect_spec_outcome(spec, restored)
    assert resumed.runtime == straight.runtime
    assert resumed.stats == straight.stats
    assert journal.records() == straight_journal.records()
    assert journal.dropped == straight_journal.dropped


def test_meta_accounting_present_only_when_attached():
    spec = _specs()["scorpio"]
    from repro.experiments.builders import build_spec_system

    system = build_spec_system(spec)
    system.run_until_done(spec.max_cycles)
    assert "journal.records" not in system.stats.meta

    journal = EventJournal()
    system = attach_observability(build_spec_system(spec), journal)
    sampler = MeshSampler(system_routers(system), interval=64)
    system.engine.attach_sampler(sampler)
    system.run_until_done(spec.max_cycles)
    meta = system.stats.meta
    assert meta["journal.records"] == len(journal)
    assert meta["journal.dropped"] == journal.dropped
    assert meta["journal.samples"] == len(sampler)
    # ... and none of it is in the payload-feeding snapshot.
    assert not any(key.startswith("journal.")
                   for key in system.stats.snapshot())


def test_sampler_frame_shape():
    spec = _specs()["scorpio"]
    from repro.experiments.builders import build_spec_system

    system = build_spec_system(spec)
    sampler = MeshSampler(system_routers(system), interval=64)
    attach_observability(system, sampler=sampler)
    system.run_until_done(spec.max_cycles)
    frame = sampler.frame()
    n_nodes = system.noc_config.n_nodes
    cycles = frame.select("sample.*.cycle")
    assert len(cycles) == len(sampler)
    assert sorted(cycles.values()) == list(cycles.values())
    occ = frame.select("sample.0000.router.*.occupancy")
    assert len(occ) == n_nodes
