"""Tests for the write-through L1 and the region-tracker snoop filter."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.l1 import L1Cache
from repro.cache.region_tracker import RegionTracker


class TestL1:
    def test_miss_then_refill_then_hit(self):
        l1 = L1Cache()
        assert not l1.read(0x100)
        l1.refill(0x100)
        assert l1.read(0x100)

    def test_write_through_no_allocate(self):
        l1 = L1Cache()
        assert not l1.write(0x200)
        # no-write-allocate: still a miss afterwards
        assert not l1.read(0x200)

    def test_invalidation_port(self):
        l1 = L1Cache()
        l1.refill(0x300)
        assert l1.invalidate(0x300)
        assert not l1.read(0x300)
        assert not l1.invalidate(0x300)   # second time: not present

    def test_refill_evicts_lru(self):
        l1 = L1Cache(size_bytes=128, ways=2, line_size=32)  # 4 lines
        l1.refill(0x00)
        l1.refill(0x80)    # same set (2 sets: 0x00,0x80 -> set 0)
        l1.read(0x00)
        l1.refill(0x100)   # set 0 again: evicts 0x80
        assert l1.holds(0x00)
        assert not l1.holds(0x80)

    def test_refill_idempotent(self):
        l1 = L1Cache()
        l1.refill(0x40)
        l1.refill(0x40)
        assert l1.holds(0x40)


class TestRegionTracker:
    def test_empty_filters_everything(self):
        rt = RegionTracker()
        assert not rt.may_cache(0x1234)

    def test_inserted_region_conservative(self):
        rt = RegionTracker(region_bytes=4096)
        rt.line_inserted(0x1000)
        assert rt.may_cache(0x1020)     # same region
        assert rt.may_cache(0x1FFF)
        assert not rt.may_cache(0x2000)  # next region

    def test_counting_eviction(self):
        rt = RegionTracker()
        rt.line_inserted(0x1000)
        rt.line_inserted(0x1040)
        rt.line_evicted(0x1000)
        assert rt.may_cache(0x1040)
        rt.line_evicted(0x1040)
        assert not rt.may_cache(0x1000)

    def test_saturation_goes_conservative(self):
        rt = RegionTracker(region_bytes=64, entries=2)
        rt.line_inserted(0)
        rt.line_inserted(64)
        rt.line_inserted(128)   # overflow
        assert rt.saturated
        assert rt.may_cache(999999)   # conservative: never filter

    def test_saturation_clears_when_empty(self):
        rt = RegionTracker(region_bytes=64, entries=1)
        rt.line_inserted(0)
        rt.line_inserted(64)
        assert rt.saturated
        rt.line_evicted(0)
        assert not rt.saturated

    @settings(max_examples=30)
    @given(ops=st.lists(st.tuples(st.booleans(), st.integers(0, 1 << 16)),
                        max_size=80))
    def test_property_no_false_negatives(self, ops):
        """The filter may say yes wrongly, never no wrongly."""
        rt = RegionTracker(region_bytes=256, entries=4)
        live = {}
        for insert, addr in ops:
            line = addr & ~31
            if insert:
                rt.line_inserted(line)
                live[line] = live.get(line, 0) + 1
            elif live.get(line):
                rt.line_evicted(line)
                live[line] -= 1
        for line, count in live.items():
            if count > 0:
                assert rt.may_cache(line)
