"""Unit-level L2 controller tests using a scripted NIC (no real network).

These exercise transient-state corner cases that full-system runs only
hit probabilistically: FID deferral order, writeback-buffer snooping,
lost ownership, upgrade completion without data, version accounting.
"""

from typing import List, Optional, Tuple

import pytest

from repro.coherence.l2_controller import CacheConfig, L2Controller
from repro.coherence.messages import (CoherenceRequest, CoherenceResponse,
                                      ReqKind, RespKind)
from repro.coherence.mosi import State

LINE = 0x4000_0000


class ScriptedNic:
    """Stands in for the NIC: records sends, lets tests deliver the
    ordered stream and responses by hand."""

    def __init__(self, node=0):
        self.node = node
        self.sent_requests: List[CoherenceRequest] = []
        self.sent_responses: List[Tuple[CoherenceResponse, int]] = []
        self._req_listener = None
        self._resp_listener = None
        self.accept_gate = None

    def add_request_listener(self, fn):
        self._req_listener = fn

    def add_response_listener(self, fn):
        self._resp_listener = fn

    def can_send_request(self):
        return True

    def send_request(self, payload, dst=None):
        self.sent_requests.append(payload)

    def send_response(self, payload, dst, carries_data=True):
        self.sent_responses.append((payload, dst))

    # test drivers -----------------------------------------------------
    def deliver_ordered(self, l2, req, cycle):
        self._req_listener(req, req.requester, cycle, cycle)
        l2.step(cycle)

    def deliver_response(self, resp, cycle):
        self._resp_listener(resp, cycle)


def make_l2(node=0, **config_overrides):
    nic = ScriptedNic(node)
    config = CacheConfig(use_region_tracker=False, **config_overrides)
    l2 = L2Controller(node, nic, memory_map=lambda addr: 99, config=config)
    return l2, nic


def drive(l2, cycles, start=0):
    for cycle in range(start, start + cycles):
        l2.step(cycle)


def remote(kind, requester=7, addr=LINE):
    return CoherenceRequest(kind=kind, addr=addr, requester=requester)


class TestMissFlow:
    def test_read_miss_issues_gets(self):
        l2, nic = make_l2()
        completions = []
        l2.set_completion_callback(
            lambda token, cycle, version: completions.append(token))
        assert l2.core_request("R", LINE, 0, token="t")
        assert len(nic.sent_requests) == 1
        req = nic.sent_requests[0]
        assert req.kind is ReqKind.GETS

        # Own request comes back in the global order...
        nic.deliver_ordered(l2, req, 20)
        assert not completions          # still waiting for data
        # ...then the owner's data arrives.
        resp = CoherenceResponse(kind=RespKind.DATA, addr=LINE, dest=0,
                                 requester=0, req_id=req.req_id,
                                 served_by="cache", version=3)
        nic.deliver_response(resp, 40)
        assert completions == ["t"]
        assert l2.state_of(LINE) is State.S
        assert l2.line_version(LINE) == 3

    def test_write_miss_becomes_modified_with_bumped_version(self):
        l2, nic = make_l2()
        l2.core_request("W", LINE, 0, token="t")
        req = nic.sent_requests[0]
        assert req.kind is ReqKind.GETX
        nic.deliver_ordered(l2, req, 20)
        resp = CoherenceResponse(kind=RespKind.MEM_DATA, addr=LINE, dest=0,
                                 requester=0, req_id=req.req_id,
                                 served_by="memory", version=5)
        nic.deliver_response(resp, 40)
        assert l2.state_of(LINE) is State.M
        assert l2.line_version(LINE) == 6   # the store made version 6

    def test_data_before_order_waits(self):
        l2, nic = make_l2()
        l2.core_request("R", LINE, 0, token="t")
        req = nic.sent_requests[0]
        resp = CoherenceResponse(kind=RespKind.DATA, addr=LINE, dest=0,
                                 requester=0, req_id=req.req_id)
        nic.deliver_response(resp, 10)      # data races ahead of order
        assert l2.state_of(LINE) is State.I
        nic.deliver_ordered(l2, req, 30)
        assert l2.state_of(LINE) is State.S

    def test_mshr_cap_respected(self):
        l2, _nic = make_l2(mshrs=2)
        assert l2.core_request("R", LINE, 0)
        assert l2.core_request("R", LINE + 32, 0)
        assert not l2.core_request("R", LINE + 64, 0)

    def test_duplicate_line_request_rejected(self):
        l2, _nic = make_l2()
        assert l2.core_request("R", LINE, 0)
        assert not l2.core_request("W", LINE, 0)


class TestUpgrade:
    def _fill_owned(self, l2, nic, state=State.O):
        l2.array.fill(LINE, state, version=2)

    def test_upgrade_completes_without_data(self):
        l2, nic = make_l2()
        self._fill_owned(l2, nic, State.O)
        completions = []
        l2.set_completion_callback(
            lambda token, cycle, version: completions.append(version))
        l2.core_request("W", LINE, 0, token="t")
        req = nic.sent_requests[0]
        assert req.kind is ReqKind.GETX
        nic.deliver_ordered(l2, req, 20)
        assert completions == [3]           # 2 + the upgrading store
        assert l2.state_of(LINE) is State.M

    def test_upgrade_loses_race_needs_data(self):
        # A remote GETX is ordered before ours: we are invalidated and
        # must then wait for data.
        l2, nic = make_l2()
        self._fill_owned(l2, nic, State.O)
        l2.core_request("W", LINE, 0, token="t")
        our_req = nic.sent_requests[0]
        nic.deliver_ordered(l2, remote(ReqKind.GETX, requester=7), 10)
        drive(l2, 15, start=11)
        assert l2.state_of(LINE) is State.I
        # We supplied data to the winner.
        assert any(r.dest == 7 for r, _d in nic.sent_responses)
        nic.deliver_ordered(l2, our_req, 30)
        mshr = l2.mshrs[our_req.req_id]
        assert mshr.needs_data


class TestSnoops:
    def test_owner_supplies_and_downgrades(self):
        l2, nic = make_l2()
        l2.array.fill(LINE, State.M, version=4)
        nic.deliver_ordered(l2, remote(ReqKind.GETS, 5), 10)
        drive(l2, 15, start=11)
        assert l2.state_of(LINE) is State.O
        resp, dst = nic.sent_responses[0]
        assert dst == 5 and resp.version == 4

    def test_deferred_snoops_serviced_in_order(self):
        l2, nic = make_l2()
        l2.core_request("W", LINE, 0, token="t")
        req = nic.sent_requests[0]
        nic.deliver_ordered(l2, req, 10)           # ours is ordered
        nic.deliver_ordered(l2, remote(ReqKind.GETS, 3), 12)
        nic.deliver_ordered(l2, remote(ReqKind.GETX, 4), 14)
        assert l2.stats.counter("l2.snoops.deferred") == 2
        resp = CoherenceResponse(kind=RespKind.MEM_DATA, addr=LINE, dest=0,
                                 requester=0, req_id=req.req_id,
                                 served_by="memory", version=0)
        nic.deliver_response(resp, 30)
        drive(l2, 15, start=31)
        # GETS from 3 first (we supply, stay O), then GETX from 4
        # (supply + invalidate).
        dests = [dst for _r, dst in nic.sent_responses
                 if _r.kind is RespKind.DATA]
        assert dests == [3, 4]
        assert l2.state_of(LINE) is State.I

    def test_fid_overflow_stalls_stream(self):
        l2, nic = make_l2(fid_list_size=1)
        l2.core_request("W", LINE, 0, token="t")
        req = nic.sent_requests[0]
        nic.deliver_ordered(l2, req, 10)
        nic.deliver_ordered(l2, remote(ReqKind.GETS, 3), 12)
        nic.deliver_ordered(l2, remote(ReqKind.GETS, 4), 14)
        assert l2.stats.counter("l2.snoops.fid_stall") >= 1
        assert not l2.can_accept_ordered() or True   # queue may back up


class TestWritebacks:
    def test_wb_entry_serves_snoops_until_put_ordered(self):
        l2, nic = make_l2(l2_size=128, l2_ways=2)
        l2.array.fill(LINE, State.M, version=9)
        # Force the eviction path directly.
        l2._evict(LINE, State.M, cycle=0)
        put = l2.wb_buffer[LINE].put
        assert put.kind is ReqKind.PUT
        # A snoop hits the writeback buffer and still gets version 9.
        nic.deliver_ordered(l2, remote(ReqKind.GETS, 6), 5)
        drive(l2, 15, start=6)
        resp, dst = next((r, d) for r, d in nic.sent_responses
                         if r.kind is RespKind.DATA)
        assert dst == 6 and resp.version == 9
        # Our PUT is ordered: WB_DATA goes to the memory controller.
        nic.deliver_ordered(l2, put, 40)
        wb = [r for r, _d in nic.sent_responses
              if r.kind is RespKind.WB_DATA]
        assert len(wb) == 1 and wb[0].version == 9
        assert LINE not in l2.wb_buffer

    def test_lost_ownership_suppresses_writeback(self):
        l2, nic = make_l2()
        l2.array.fill(LINE, State.M, version=1)
        l2._evict(LINE, State.M, cycle=0)
        put = l2.wb_buffer[LINE].put
        # A GETX is ordered before our PUT: the winner gets the data and
        # our PUT becomes stale.
        nic.deliver_ordered(l2, remote(ReqKind.GETX, 8), 5)
        drive(l2, 15, start=6)
        assert l2.wb_buffer[LINE].lost_ownership
        nic.deliver_ordered(l2, put, 40)
        assert not any(r.kind is RespKind.WB_DATA
                       for r, _d in nic.sent_responses)
        assert l2.stats.counter("l2.writebacks.stale") == 1


class TestHitPath:
    def test_read_hit_reports_version(self):
        l2, nic = make_l2()
        l2.array.fill(LINE, State.S, version=7)
        seen = []
        l2.set_completion_callback(
            lambda token, cycle, version: seen.append(version))
        l2.core_request("R", LINE, 0, token="t")
        drive(l2, 15, start=1)
        assert seen == [7]

    def test_write_hit_in_m_bumps_version(self):
        l2, nic = make_l2()
        l2.array.fill(LINE, State.M, version=7)
        seen = []
        l2.set_completion_callback(
            lambda token, cycle, version: seen.append(version))
        l2.core_request("W", LINE, 0, token="t")
        drive(l2, 15, start=1)
        assert seen == [8]
        assert l2.line_version(LINE) == 8
