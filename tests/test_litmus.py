"""Sequential-consistency litmus tests on the live SCORPIO system.

SCORPIO's global request order makes the system sequentially consistent
(Table 2); these tests run the canonical litmus shapes on real
cores/caches/networks with several timing seeds and check every observed
outcome against an SC witness.
"""

import pytest

from repro.verification.litmus import (ALL_LITMUS, COHERENCE_ORDER, IRIW,
                                       LOAD_BUFFERING, MESSAGE_PASSING,
                                       STORE_BUFFERING, LitmusProgram,
                                       Observation,
                                       is_sequentially_consistent,
                                       run_litmus, var_addr)


class TestVarAddresses:
    def test_distinct_lines(self):
        addrs = {var_addr(v) for v in ("x", "y", "z", "flag")}
        assert len(addrs) == 4
        assert all(a % 32 == 0 for a in addrs)


class TestChecker:
    def test_accepts_serial_execution(self):
        obs = [
            Observation(0, 0, "W", "x", 1),
            Observation(0, 1, "W", "y", 1),
            Observation(1, 0, "R", "y", 1),
            Observation(1, 1, "R", "x", 1),
        ]
        assert is_sequentially_consistent(MESSAGE_PASSING, obs)

    def test_rejects_mp_violation(self):
        # Consumer sees the flag (y=1) but stale data (x=0): non-SC.
        obs = [
            Observation(0, 0, "W", "x", 1),
            Observation(0, 1, "W", "y", 1),
            Observation(1, 0, "R", "y", 1),
            Observation(1, 1, "R", "x", 0),
        ]
        assert not is_sequentially_consistent(MESSAGE_PASSING, obs)

    def test_rejects_sb_violation(self):
        # Both reads of store-buffering returning 0 is the classic
        # TSO-allowed / SC-forbidden outcome.
        obs = [
            Observation(0, 0, "W", "x", 1),
            Observation(0, 1, "R", "y", 0),
            Observation(1, 0, "W", "y", 1),
            Observation(1, 1, "R", "x", 0),
        ]
        assert not is_sequentially_consistent(STORE_BUFFERING, obs)

    def test_accepts_sb_allowed_outcome(self):
        obs = [
            Observation(0, 0, "W", "x", 1),
            Observation(0, 1, "R", "y", 0),
            Observation(1, 0, "W", "y", 1),
            Observation(1, 1, "R", "x", 1),
        ]
        assert is_sequentially_consistent(STORE_BUFFERING, obs)

    def test_rejects_coherence_backwards(self):
        obs = [
            Observation(0, 0, "W", "x", 1),
            Observation(0, 1, "W", "x", 2),
            Observation(1, 0, "R", "x", 2),
            Observation(1, 1, "R", "x", 1),   # went backwards!
        ]
        assert not is_sequentially_consistent(COHERENCE_ORDER, obs)


@pytest.mark.parametrize("program", ALL_LITMUS, ids=lambda p: p.name)
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_litmus_on_live_system(program, seed):
    observations = run_litmus(program, seed=seed)
    assert is_sequentially_consistent(program, observations), (
        f"{program.name} produced a non-SC outcome: {observations}")


def test_litmus_under_background_conflicts():
    # The same variables hammered by extra writer threads: outcomes must
    # still be explainable by some SC interleaving.
    program = LitmusProgram(
        name="mp-with-noise",
        threads=[
            [("W", "x"), ("W", "y")],
            [("R", "y"), ("R", "x")],
            [("W", "z"), ("R", "x")],
            [("R", "z"), ("W", "z")],
        ])
    for seed in (0, 3):
        observations = run_litmus(program, seed=seed)
        assert is_sequentially_consistent(program, observations)


def test_too_many_threads_rejected():
    program = LitmusProgram(name="big", threads=[[("R", "x")]] * 10)
    with pytest.raises(ValueError):
        run_litmus(program, width=3, height=3)


@pytest.mark.parametrize("protocol", ["lpd", "ht", "fullbit"])
def test_litmus_on_directory_protocols(protocol):
    # The directory baselines must be sequentially consistent too — the
    # paper's methodology holds the protocol equal across systems.
    from repro.verification.litmus import run_suite
    results = run_suite(protocol=protocol, seeds=(0, 1))
    assert all(results.values()), f"SC violation under {protocol}: " \
        f"{[n for n, ok in results.items() if not ok]}"


def test_run_suite_scorpio_all_pass():
    from repro.verification.litmus import run_suite
    results = run_suite(protocol="scorpio", seeds=(0,))
    assert set(results) == {"message-passing", "store-buffering",
                            "load-buffering", "coherence-order", "iriw"}
    assert all(results.values())


def test_run_litmus_rejects_unknown_protocol():
    from repro.verification.litmus import MESSAGE_PASSING, run_litmus
    with pytest.raises(ValueError, match="unknown protocol"):
        run_litmus(MESSAGE_PASSING, protocol="tokenring")
