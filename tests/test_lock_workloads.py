"""Lock/barrier workload tests (repro.workloads.locks)."""

import pytest

from repro.noc.config import NocConfig
from repro.systems.directory import DirectorySystem
from repro.systems.scorpio import ScorpioSystem
from repro.workloads.locks import (LOCK_BASE, barrier_traces,
                                   lock_contention_traces)

LINE = 32


def run_scorpio(traces, width=3, height=3, max_cycles=300_000):
    system = ScorpioSystem(traces=traces,
                           noc=NocConfig(width=width, height=height))
    system.run_until_done(max_cycles)
    assert system.all_cores_finished()
    return system


class TestGenerators:
    def test_lock_trace_shape(self):
        traces = lock_contention_traces(4, acquisitions_per_core=2,
                                        critical_ops=3)
        assert len(traces) == 4
        for trace in traces:
            kinds = [op.op for op in trace]
            # Each acquisition: A, then R,R,W critical, then W release.
            assert kinds == ["A", "R", "R", "W", "W"] * 2

    def test_lock_trace_deterministic(self):
        a = lock_contention_traces(4, seed=7)
        b = lock_contention_traces(4, seed=7)
        assert [list(t) for t in a] == [list(t) for t in b]
        c = lock_contention_traces(4, seed=8)
        assert [list(t) for t in a] != [list(t) for t in c]

    def test_barrier_trace_counts(self):
        traces = barrier_traces(5, phases=3, compute_ops=4)
        for trace in traces:
            assert sum(1 for op in trace if op.op == "A") == 3
            assert len(trace) == 3 * (4 + 1)

    def test_barrier_lines_distinct_per_phase(self):
        traces = barrier_traces(2, phases=3, compute_ops=0)
        barriers = [op.addr for op in traces[0] if op.op == "A"]
        assert len(set(barriers)) == 3

    def test_private_lines_disjoint_between_cores(self):
        traces = barrier_traces(4, phases=1, compute_ops=8,
                                private_lines=4)
        footprints = []
        for trace in traces:
            footprints.append({op.addr & ~(LINE - 1) for op in trace
                               if op.op != "A"})
        for i in range(4):
            for j in range(i + 1, 4):
                assert not footprints[i] & footprints[j]

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            lock_contention_traces(0)
        with pytest.raises(ValueError):
            lock_contention_traces(2, critical_ops=0)
        with pytest.raises(ValueError):
            barrier_traces(2, phases=0)
        with pytest.raises(ValueError):
            barrier_traces(0)


class TestLockRuns:
    def test_lock_run_completes_with_single_owner(self):
        traces = lock_contention_traces(9, acquisitions_per_core=3)
        system = run_scorpio(traces)
        owners = [l2.node for l2 in system.l2s
                  if l2.state_of(LOCK_BASE).is_owner]
        assert len(owners) <= 1

    def test_atomics_serialize_lock_updates(self):
        # Total versions on the lock line = all acquisitions + releases
        # (every one is a distinct, globally ordered update).
        n, acq = 6, 2
        traces = lock_contention_traces(n, acquisitions_per_core=acq)
        traces += [type(traces[0])([])] * 3   # pad to 9 cores
        system = run_scorpio(traces)
        version = max(l2.line_version(LOCK_BASE) for l2 in system.l2s)
        assert version == n * acq * 2

    def test_lock_handoffs_are_cache_to_cache(self):
        traces = lock_contention_traces(9, acquisitions_per_core=3)
        system = run_scorpio(traces)
        assert system.stats.counter("l2.data_forwards") > 9

    def test_barrier_run_completes_on_directory_too(self):
        traces = barrier_traces(9, phases=2, compute_ops=3)
        system = DirectorySystem(scheme="LPD", traces=traces,
                                 noc=NocConfig(width=3, height=3))
        system.run_until_done(300_000)
        assert system.all_cores_finished()

    def test_scorpio_lock_handoff_beats_directory(self):
        # The domain claim behind Figure 6b: lock migration is all
        # cache-to-cache transfers, where SCORPIO avoids indirection.
        traces = lock_contention_traces(9, acquisitions_per_core=3,
                                        seed=3)
        scorpio = run_scorpio(list(traces))
        directory = DirectorySystem(scheme="LPD", traces=traces,
                                    noc=NocConfig(width=3, height=3))
        directory.run_until_done(300_000)
        assert directory.all_cores_finished()
        assert (scorpio.stats.mean("l2.miss_latency.cache")
                < directory.stats.mean("l2.miss_latency.cache"))
