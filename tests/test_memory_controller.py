"""Memory controller tests: owner tracking, writeback valid-bit blocking,
stale PUT handling, directory-mode MemRead service."""

from typing import List

from repro.coherence.messages import (CoherenceRequest, CoherenceResponse,
                                      MemRead, ReqKind, RespKind)
from repro.memory.controller import (MemoryConfig, MemoryController,
                                     make_memory_map)


class FakeNic:
    """Captures responses the MC sends."""

    def __init__(self, node=3):
        self.node = node
        self.sent: List[CoherenceResponse] = []
        self._req_listener = None
        self._resp_listener = None

    def add_request_listener(self, fn):
        self._req_listener = fn

    def add_response_listener(self, fn):
        self._resp_listener = fn

    def send_response(self, payload, dst, carries_data=True):
        self.sent.append(payload)

    # test drivers ---------------------------------------------------------
    def deliver_ordered(self, req, cycle):
        self._req_listener(req, req.requester, cycle, cycle)

    def deliver_response(self, resp, cycle):
        self._resp_listener(resp, cycle)


def make_mc(snoopy=True):
    nic = FakeNic()
    mc = MemoryController(3, nic, owns_addr=lambda addr: True,
                          config=MemoryConfig(), snoopy=snoopy)
    return mc, nic


def drain(mc, until_cycle):
    for cycle in range(until_cycle):
        mc.step(cycle)


def gets(addr, requester=1):
    return CoherenceRequest(kind=ReqKind.GETS, addr=addr,
                            requester=requester)


def getx(addr, requester=1):
    return CoherenceRequest(kind=ReqKind.GETX, addr=addr,
                            requester=requester)


def put(addr, requester=1):
    return CoherenceRequest(kind=ReqKind.PUT, addr=addr, requester=requester)


class TestSnoopyMemoryController:
    def test_gets_served_when_memory_owns(self):
        mc, nic = make_mc()
        mc._on_ordered_request(gets(0x100, 1), 1, 0, 0)
        drain(mc, 200)
        assert len(nic.sent) == 1
        resp = nic.sent[0]
        assert resp.kind is RespKind.MEM_DATA and resp.dest == 1

    def test_gets_ignored_when_cache_owns(self):
        mc, nic = make_mc()
        mc._on_ordered_request(getx(0x100, 2), 2, 0, 0)   # 2 becomes owner
        nic.sent.clear()
        mc._on_ordered_request(gets(0x100, 1), 1, 10, 10)
        drain(mc, 300)
        # Only the original GETX got memory data; the GETS is the owner's.
        assert all(r.dest != 1 for r in nic.sent)

    def test_getx_transfers_ownership(self):
        mc, nic = make_mc()
        mc._on_ordered_request(getx(0x100, 2), 2, 0, 0)
        assert mc.owner[0x100] == 2
        mc._on_ordered_request(getx(0x100, 4), 4, 10, 10)
        assert mc.owner[0x100] == 4
        drain(mc, 300)
        # Memory served only the first GETX (owner was memory then).
        assert len(nic.sent) == 1 and nic.sent[0].dest == 2

    def test_put_returns_ownership_and_blocks_until_data(self):
        mc, nic = make_mc()
        mc._on_ordered_request(getx(0x100, 2), 2, 0, 0)
        drain(mc, 200)
        nic.sent.clear()
        mc._on_ordered_request(put(0x100, 2), 2, 210, 210)
        assert 0x100 not in mc.owner
        assert mc.wb_pending.get(0x100)
        # A GETS racing the writeback data must wait.
        mc._on_ordered_request(gets(0x100, 5), 5, 220, 220)
        drain(mc, 400)
        assert not nic.sent
        wb = CoherenceResponse(kind=RespKind.WB_DATA, addr=0x100, dest=3,
                               requester=2, req_id=0)
        mc._on_response(wb, 410)
        drain(mc, 700)
        assert len(nic.sent) == 1 and nic.sent[0].dest == 5

    def test_stale_put_ignored(self):
        mc, nic = make_mc()
        mc._on_ordered_request(getx(0x100, 2), 2, 0, 0)
        mc._on_ordered_request(getx(0x100, 4), 4, 10, 10)  # 4 now owns
        mc._on_ordered_request(put(0x100, 2), 2, 20, 20)   # stale
        assert mc.owner[0x100] == 4
        assert not mc.wb_pending.get(0x100)

    def test_address_filter(self):
        nic = FakeNic()
        mc = MemoryController(3, nic, owns_addr=lambda addr: False)
        mc._on_ordered_request(gets(0x100), 1, 0, 0)
        drain(mc, 200)
        assert not nic.sent

    def test_memory_map_interleaves(self):
        mmap = make_memory_map([3, 33], line_size=32)
        homes = {mmap(line * 32) for line in range(8)}
        assert homes == {3, 33}


class TestDirectoryModeMemoryController:
    def test_snoopy_logic_disabled(self):
        mc, nic = make_mc(snoopy=False)
        mc._on_ordered_request(gets(0x100, 1), 1, 0, 0)
        drain(mc, 200)
        assert not nic.sent

    def test_mem_read_served(self):
        mc, nic = make_mc(snoopy=False)
        msg = MemRead(request=gets(0x100, 7), home=12, sent_cycle=0)
        mc._on_ordered_request(msg, 12, 5, 5)
        drain(mc, 200)
        assert len(nic.sent) == 1
        resp = nic.sent[0]
        assert resp.kind is RespKind.MEM_DATA
        assert resp.dest == 7
        assert resp.served_by == "memory"
        assert "dir_to_mem" in resp.stamps
