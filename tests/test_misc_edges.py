"""Focused edge-case tests across small surfaces: engine watchers, CLI
error paths, notification-tracker position counter, packet helpers,
config validation corners and workload scaling."""

import io

import pytest

from repro.noc.config import NocConfig, NotificationConfig
from repro.noc.packet import data_packet_flits
from repro.notification.tracker import NotificationTracker
from repro.sim.engine import Clocked, Engine


class TestEngineWatchers:
    def test_watcher_called_every_cycle(self):
        engine = Engine()
        seen = []
        engine.add_watcher(seen.append)
        engine.run(5)
        assert seen == [1, 2, 3, 4, 5]

    def test_watcher_sees_post_commit_state(self):
        class Counter(Clocked):
            value = 0
            _next = 0

            def step(self, cycle):
                self._next = self.value + 1

            def commit(self, cycle):
                self.value = self._next

        engine = Engine()
        counter = engine.register(Counter())
        observed = []
        engine.add_watcher(lambda cycle: observed.append(counter.value))
        engine.run(3)
        assert observed == [1, 2, 3]


class TestNotificationTrackerPosition:
    def test_consumed_counts_globally(self):
        tracker = NotificationTracker(n_cores=4, bits_per_core=1,
                                      queue_depth=4)
        tracker.push(0b0110)      # cores 1 and 2
        assert tracker.consumed == 0
        tracker.consume_esid()
        tracker.consume_esid()
        assert tracker.consumed == 2
        tracker.push(0b0001)
        tracker.consume_esid()
        assert tracker.consumed == 3

    def test_two_trackers_agree_on_position_semantics(self):
        a = NotificationTracker(4, 1, 4)
        b = NotificationTracker(4, 1, 4)
        for vector in (0b1010, 0b0101):
            a.push(vector)
            b.push(vector)
        # Drain a ahead of b; at equal consumed counts the ESIDs match.
        order_a = []
        while a.current_esid() is not None:
            order_a.append((a.consumed, a.current_esid()))
            a.consume_esid()
        order_b = []
        while b.current_esid() is not None:
            order_b.append((b.consumed, b.current_esid()))
            b.consume_esid()
        assert order_a == order_b


class TestPacketHelpers:
    @pytest.mark.parametrize("cw,flits", [(8, 5), (16, 3), (32, 2)])
    def test_data_flit_counts_match_paper(self, cw, flits):
        assert data_packet_flits(cw, 32) == flits

    def test_rejects_zero_channel(self):
        with pytest.raises(ValueError):
            data_packet_flits(0, 32)


class TestConfigValidation:
    def test_noc_rejects_zero_dimensions(self):
        with pytest.raises(ValueError):
            NocConfig(width=0, height=3)

    def test_noc_rejects_zero_vcs(self):
        with pytest.raises(ValueError):
            NocConfig(goreq_vcs=0)
        with pytest.raises(ValueError):
            NocConfig(goreq_vc_depth=0)

    def test_notification_rejects_bad_bits(self):
        with pytest.raises(ValueError):
            NotificationConfig(bits_per_core=0)

    def test_reserved_vc_index_requires_rvc(self):
        config = NocConfig(reserved_vc=False)
        with pytest.raises(ValueError):
            config.reserved_vc_index()

    def test_max_requests_per_window(self):
        assert NotificationConfig(bits_per_core=1).max_requests_per_window == 1
        assert NotificationConfig(bits_per_core=2).max_requests_per_window == 3

    def test_minimum_window_formula(self):
        assert NotificationConfig.minimum_window(6, 6) == 11
        assert NotificationConfig.minimum_window(10, 10) == 19


class TestCliErrorPaths:
    def test_unknown_benchmark_raises(self):
        from repro.cli import main
        with pytest.raises(KeyError, match="unknown benchmark"):
            main(["run", "quake3", "--mesh", "3x3", "--ops", "5"],
                 out=io.StringIO())

    def test_run_exit_code_reflects_progress(self):
        from repro.cli import main
        out = io.StringIO()
        # A max-cycles budget too small to finish -> nonzero exit.
        code = main(["run", "fft", "--mesh", "3x3", "--ops", "50",
                     "--scale", "0.02", "--think-scale", "10",
                     "--max-cycles", "50"], out=out)
        assert code == 1

    def test_compare_without_lpd_uses_first_protocol(self):
        from repro.cli import main
        out = io.StringIO()
        code = main(["compare", "fft", "--mesh", "3x3", "--ops", "8",
                     "--scale", "0.02", "--think-scale", "10",
                     "--protocols", "scorpio", "ht"], out=out)
        assert code == 0
        assert "normalized to SCORPIO" in out.getvalue()


class TestWorkloadScaling:
    def test_scaled_shrinks_footprint_and_stretches_think(self):
        from repro.workloads.suites import profile
        from repro.workloads.synthetic import scaled
        base = profile("barnes")
        small = scaled(base, 0.1, 3.0)
        assert small.private_lines < base.private_lines
        assert small.think_mean > base.think_mean

    def test_generate_system_traces_deterministic(self):
        from repro.workloads.suites import profile
        from repro.workloads.synthetic import generate_system_traces
        a = generate_system_traces(profile("lu"), 4, 10, seed=5)
        b = generate_system_traces(profile("lu"), 4, 10, seed=5)
        assert [list(t) for t in a] == [list(t) for t in b]

    def test_unknown_profile_lists_known(self):
        from repro.workloads.suites import profile
        with pytest.raises(KeyError, match="known"):
            profile("doom")


class TestApiSurfaces:
    def test_run_benchmark_accepts_profile_object(self):
        from repro.core import ChipConfig
        from repro.core.api import run_benchmark
        from repro.workloads.synthetic import WorkloadProfile
        profile = WorkloadProfile(name="custom", read_fraction=0.7,
                                  shared_fraction=0.2,
                                  shared_write_fraction=0.3,
                                  private_lines=40, shared_lines=10,
                                  hot_fraction=0.2, think_mean=8)
        result = run_benchmark(profile, protocol="scorpio",
                               config=ChipConfig.variant(3, 3),
                               ops_per_core=8)
        assert result.benchmark == "custom"
        assert result.progress == 1.0

    def test_unknown_protocol_rejected(self):
        from repro.core.api import build_system
        import pytest as _pytest
        with _pytest.raises(ValueError, match="unknown protocol"):
            build_system("moesi", traces=None)

    def test_normalized_runtimes_zero_baseline_rejected(self):
        from repro.core.api import RunResult, normalized_runtimes
        import pytest as _pytest
        results = {"lpd": RunResult("lpd", "x", 9, 0, 0, 1.0)}
        with _pytest.raises(ValueError, match="zero"):
            normalized_runtimes(results, baseline="lpd")

    def test_breakdown_filters_by_served_kind(self):
        from repro.core import ChipConfig
        from repro.core.api import run_benchmark
        result = run_benchmark("fft", protocol="scorpio",
                               config=ChipConfig.variant(3, 3),
                               ops_per_core=12, workload_scale=0.02,
                               think_scale=10.0)
        cache = result.breakdown("cache")
        memory = result.breakdown("memory")
        assert "mem_access" in memory
        assert "mem_access" not in cache
