"""Runtime invariant monitor tests (repro.verification.monitor)."""

import pytest

from repro.cpu.trace import Trace, TraceOp
from repro.noc.config import NocConfig
from repro.systems.directory import DirectorySystem
from repro.systems.scorpio import ScorpioSystem
from repro.verification.monitor import (InvariantViolation, SystemMonitor,
                                        attach_monitor)
from repro.workloads.synthetic import uniform_random_trace

LINE = 32
ADDR = 0x4000_0000


def scorpio(traces=None, width=3, height=3):
    n = width * height
    if traces is not None:
        traces = list(traces) + [Trace([])] * (n - len(traces))
    else:
        traces = [Trace([]) for _ in range(n)]
    return ScorpioSystem(traces=traces,
                         noc=NocConfig(width=width, height=height))


class TestCleanRuns:
    def test_scorpio_random_run_is_clean(self):
        traces = [uniform_random_trace(c, 10, 8, write_fraction=0.5,
                                       think=4, seed=41) for c in range(9)]
        system = scorpio(traces)
        monitor = attach_monitor(system)
        system.run_until_done(150_000)
        assert system.all_cores_finished()
        assert monitor.report.clean
        assert monitor.report.checks_run > 100

    def test_directory_run_is_clean(self):
        traces = [uniform_random_trace(c, 8, 8, write_fraction=0.5,
                                       think=4, seed=43) for c in range(9)]
        system = DirectorySystem(
            scheme="LPD",
            traces=traces, noc=NocConfig(width=3, height=3))
        monitor = attach_monitor(system, interval=2)
        system.run_until_done(150_000)
        assert system.all_cores_finished()
        assert monitor.report.clean

    def test_sampling_interval_reduces_checks(self):
        system1 = scorpio([Trace([TraceOp("R", ADDR, 1)])])
        m1 = attach_monitor(system1, interval=1)
        system1.run_until_done(50_000)
        system2 = scorpio([Trace([TraceOp("R", ADDR, 1)])])
        m10 = attach_monitor(system2, interval=10)
        system2.run_until_done(50_000)
        assert m10.report.checks_run < m1.report.checks_run

    def test_report_tracks_peaks(self):
        traces = [uniform_random_trace(c, 8, 6, write_fraction=0.5,
                                       think=3, seed=47) for c in range(9)]
        system = scorpio(traces)
        monitor = attach_monitor(system)
        system.run_until_done(150_000)
        assert monitor.report.max_owner_count <= 1
        assert monitor.report.max_router_occupancy >= 0


class TestViolationDetection:
    def test_double_owner_detected(self):
        # Run a write, then forge a second owner by hand: the monitor
        # must notice on the next check.
        from repro.coherence.mosi import State
        system = scorpio([Trace([TraceOp("W", ADDR, 1)])])
        monitor = attach_monitor(system)
        system.run_until_done(50_000)
        victim = system.l2s[5]
        victim.array.fill(ADDR, State.M)
        with pytest.raises(InvariantViolation, match="owned by"):
            monitor.check_single_owner(cycle=0)

    def test_non_strict_collects_instead_of_raising(self):
        from repro.coherence.mosi import State
        system = scorpio([Trace([TraceOp("W", ADDR, 1)])])
        monitor = SystemMonitor(system, strict=False)
        system.run_until_done(50_000)
        system.l2s[5].array.fill(ADDR, State.M)
        monitor.check_single_owner(cycle=0)
        assert not monitor.report.clean
        assert "owned by" in monitor.report.violations[0]

    def test_stall_detection(self):
        # A core with work whose L2 never gets a response: block the
        # NIC's accept gate so nothing completes.
        system = scorpio([Trace([TraceOp("R", ADDR, 1)])])
        monitor = attach_monitor(system, stall_limit=2_000)
        for nic in system.nics:
            nic.accept_gate = lambda: False
        with pytest.raises(InvariantViolation, match="no op completed"):
            system.run(10_000)

    def test_esid_agreement_check_passes_live(self):
        traces = [uniform_random_trace(c, 8, 6, write_fraction=0.4,
                                       think=3, seed=53) for c in range(9)]
        system = scorpio(traces)
        monitor = attach_monitor(system)
        system.run_until_done(150_000)
        monitor.check_esid_agreement(cycle=0)   # idempotent at rest
        assert monitor.report.clean

    def test_bad_interval_rejected(self):
        system = scorpio()
        with pytest.raises(ValueError):
            SystemMonitor(system, interval=0)
