"""Unit tests for the MOSI protocol tables (with the O_D collapse)."""

import pytest

from repro.coherence.messages import ReqKind
from repro.coherence.mosi import (Action, State, needs_data_for_write,
                                  on_own_request_ordered, on_remote_request,
                                  request_for)


class TestStates:
    def test_owner_states(self):
        assert State.M.is_owner and State.O.is_owner
        assert not State.S.is_owner and not State.I.is_owner

    def test_readable_writable(self):
        assert State.M.writable
        assert not State.O.writable and not State.S.writable
        assert State.S.readable and not State.I.readable


class TestRemoteRequests:
    def test_gets_on_m_supplies_and_downgrades(self):
        tr = on_remote_request(State.M, ReqKind.GETS)
        assert tr.next_state is State.O
        assert Action.SEND_DATA in tr.actions

    def test_gets_on_o_stays_owner(self):
        tr = on_remote_request(State.O, ReqKind.GETS)
        assert tr.next_state is State.O
        assert Action.SEND_DATA in tr.actions

    def test_gets_on_s_silent(self):
        tr = on_remote_request(State.S, ReqKind.GETS)
        assert tr.next_state is State.S
        assert Action.SEND_DATA not in tr.actions

    def test_getx_invalidates_owner_with_data(self):
        for state in (State.M, State.O):
            tr = on_remote_request(state, ReqKind.GETX)
            assert tr.next_state is State.I
            assert Action.SEND_DATA in tr.actions
            assert Action.INVALIDATE_L1 in tr.actions

    def test_getx_invalidates_sharer_silently(self):
        tr = on_remote_request(State.S, ReqKind.GETX)
        assert tr.next_state is State.I
        assert Action.SEND_DATA not in tr.actions
        assert Action.INVALIDATE_L1 in tr.actions

    def test_put_leaves_sharers_alone(self):
        tr = on_remote_request(State.S, ReqKind.PUT)
        assert tr.next_state is State.S

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            on_remote_request(State.S, "bogus")


class TestOwnRequests:
    def test_own_gets_lands_shared(self):
        assert on_own_request_ordered(State.I, ReqKind.GETS).next_state \
            is State.S

    def test_own_getx_lands_modified(self):
        assert on_own_request_ordered(State.S, ReqKind.GETX).next_state \
            is State.M

    def test_own_put_invalidates(self):
        tr = on_own_request_ordered(State.M, ReqKind.PUT)
        assert tr.next_state is State.I
        assert Action.INVALIDATE_L1 in tr.actions


class TestRequestSelection:
    def test_read_hit_needs_nothing(self):
        for state in (State.M, State.O, State.S):
            assert request_for("R", state) is None

    def test_read_miss_needs_gets(self):
        assert request_for("R", State.I) is ReqKind.GETS

    def test_write_hit_in_m_silent(self):
        assert request_for("W", State.M) is None

    def test_write_elsewhere_needs_getx(self):
        for state in (State.O, State.S, State.I):
            assert request_for("W", state) is ReqKind.GETX

    def test_bad_op_raises(self):
        with pytest.raises(ValueError):
            request_for("X", State.I)

    def test_needs_data_for_write(self):
        assert not needs_data_for_write(State.M)
        assert not needs_data_for_write(State.O)
        assert needs_data_for_write(State.S)
        assert needs_data_for_write(State.I)
