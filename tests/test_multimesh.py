"""Tests for the multiple-main-networks extension (Sec. 5.3)."""

import pytest

from repro.coherence.mosi import State
from repro.cpu.trace import Trace, TraceOp
from repro.noc.config import NocConfig
from repro.systems.multimesh import MultiMeshScorpioSystem
from repro.workloads.synthetic import uniform_random_trace

ADDR = 0x4000_0000


def build(traces, n_meshes=2, width=3, height=3):
    noc = NocConfig(width=width, height=height)
    padded = list(traces) + [Trace([])] * (width * height - len(traces))
    return MultiMeshScorpioSystem(traces=padded, n_meshes=n_meshes, noc=noc)


class TestBasics:
    def test_rejects_zero_meshes(self):
        with pytest.raises(ValueError):
            MultiMeshScorpioSystem(n_meshes=0)

    def test_coherence_still_works(self):
        system = build([
            Trace([TraceOp("W", ADDR, 1)]),
            Trace([TraceOp("R", ADDR, 500)]),
        ])
        system.run_until_done(30_000)
        assert system.all_cores_finished()
        assert system.l2s[0].state_of(ADDR) is State.O
        assert system.l2s[1].state_of(ADDR) is State.S

    def test_both_meshes_carry_traffic(self):
        traces = [uniform_random_trace(c, 10, 8, write_fraction=0.4,
                                       think=4, seed=9) for c in range(9)]
        system = build(traces)
        system.run_until_done(80_000)
        assert system.all_cores_finished()
        # Requests from even/odd sources travel on different meshes.
        flits = [sum(r.stats.counter("noc.flits.transmitted")
                     for r in ())]  # stats are shared; check occupancy paths
        per_mesh = [sum(router._n_buffered for router in mesh.routers)
                    for mesh in system.meshes]
        assert all(x == 0 for x in per_mesh)   # drained at the end

    def test_global_order_agreement_across_meshes(self):
        traces = [uniform_random_trace(c, 10, 6, write_fraction=0.5,
                                       think=3, seed=4) for c in range(9)]
        system = build(traces, n_meshes=3)
        logs = {n: [] for n in range(9)}
        for node, nic in enumerate(system.nics):
            nic.add_request_listener(
                (lambda k: (lambda p, sid, c, a:
                            logs[k].append((sid, p.req_id))))(node))
        system.run_until_done(120_000)
        assert system.all_cores_finished()
        for node in range(1, 9):
            assert logs[node] == logs[0], \
                "multiple meshes must not break the global order"

    def test_concurrent_writers_single_owner(self):
        system = build([Trace([TraceOp("W", ADDR, 1)]) for _ in range(9)])
        system.run_until_done(80_000)
        assert system.all_cores_finished()
        owners = [l2.node for l2 in system.l2s
                  if l2.state_of(ADDR).is_owner]
        assert len(owners) == 1


class TestThroughputBenefit:
    def test_more_meshes_do_not_hurt_and_help_under_load(self):
        # Conflict-free broadcast-heavy load: replicated meshes should
        # finish at least as fast (usually faster under saturation).
        def run(n_meshes):
            traces = [uniform_random_trace(c, 12, 64, write_fraction=0.5,
                                           think=1, seed=2)
                      for c in range(9)]
            system = build(traces, n_meshes=n_meshes)
            cycles = system.run_until_done(300_000)
            assert system.all_cores_finished()
            return cycles

        single = run(1)
        double = run(2)
        assert double <= single * 1.05
