"""Tests for the synthetic-traffic network testers."""

import pytest

from repro.noc.config import NocConfig
from repro.noc.tester import (PATTERNS, NetworkTester, TrafficConfig,
                              TrafficResult)


def small_tester(**overrides):
    return NetworkTester(NocConfig(width=4, height=4, **overrides))


class TestTrafficConfig:
    def test_unknown_pattern_rejected(self):
        with pytest.raises(ValueError):
            TrafficConfig(pattern="tornado-from-hell")

    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError):
            TrafficConfig(injection_rate=0.0)
        with pytest.raises(ValueError):
            TrafficConfig(injection_rate=1.5)


class TestPatterns:
    @pytest.mark.parametrize("pattern", PATTERNS)
    def test_all_patterns_deliver(self, pattern):
        tester = small_tester()
        result = tester.run(TrafficConfig(pattern=pattern,
                                          injection_rate=0.02), cycles=1200)
        assert result.delivered_packets > 0
        assert result.avg_latency > 0

    def test_broadcast_multiplies_deliveries(self):
        tester = small_tester()
        unicast = tester.run(TrafficConfig(pattern="uniform",
                                           injection_rate=0.02, seed=3),
                             cycles=1500)
        bcast = tester.run(TrafficConfig(pattern="broadcast",
                                         injection_rate=0.02, seed=3),
                           cycles=1500)
        # Every broadcast is delivered ~16x.
        assert bcast.delivered_packets > 5 * unicast.delivered_packets

    def test_transpose_requires_square(self):
        tester = NetworkTester(NocConfig(width=4, height=2))
        with pytest.raises(ValueError):
            tester.run(TrafficConfig(pattern="transpose",
                                     injection_rate=0.05), cycles=300)


class TestLoadBehaviour:
    def test_latency_grows_with_load(self):
        tester = small_tester()
        results = tester.latency_curve("uniform", [0.02, 0.25], cycles=1500)
        assert results[1].avg_latency > results[0].avg_latency

    def test_broadcast_saturates_early(self):
        tester = small_tester()
        bound = tester.broadcast_capacity_bound()
        assert bound == pytest.approx(1 / 16)
        # Offer 3x the theoretical broadcast capacity: must saturate.
        heavy = tester.run(TrafficConfig(pattern="broadcast",
                                         injection_rate=3 * bound),
                           cycles=2000)
        assert heavy.saturated
        # Well under the bound: must not saturate.
        light = tester.run(TrafficConfig(pattern="broadcast",
                                         injection_rate=bound / 4),
                           cycles=2000)
        assert not light.saturated

    def test_throughput_tracks_offered_load_when_unsaturated(self):
        tester = small_tester()
        rate = 0.03
        result = tester.run(TrafficConfig(pattern="uniform",
                                          injection_rate=rate), cycles=3000)
        assert result.throughput == pytest.approx(rate, rel=0.35)

    def test_deterministic_given_seed(self):
        tester = small_tester()
        a = tester.run(TrafficConfig(pattern="uniform", injection_rate=0.05,
                                     seed=11), cycles=800)
        b = tester.run(TrafficConfig(pattern="uniform", injection_rate=0.05,
                                     seed=11), cycles=800)
        assert (a.delivered_packets, a.avg_latency) \
            == (b.delivered_packets, b.avg_latency)


class TestResultShape:
    def test_result_fields(self):
        tester = small_tester()
        result = tester.run(TrafficConfig(pattern="neighbor",
                                          injection_rate=0.05), cycles=800)
        assert isinstance(result, TrafficResult)
        assert result.p95_latency >= result.avg_latency * 0.5
        assert result.offered_packets >= result.delivered_packets or True


class TestNewPatterns:
    def test_hotspot_concentrates_on_hot_node(self):
        from repro.noc.config import NocConfig
        from repro.noc.tester import NetworkTester, TrafficConfig
        tester = NetworkTester(NocConfig(width=4, height=4))
        result = tester.run(TrafficConfig(pattern="hotspot",
                                          injection_rate=0.02,
                                          hotspot_fraction=1.0,
                                          hotspot_node=5, seed=3),
                            cycles=1500)
        assert result.delivered_packets > 0
        assert result.avg_latency > 0

    def test_hotspot_saturates_before_uniform(self):
        from repro.noc.config import NocConfig
        from repro.noc.tester import NetworkTester, TrafficConfig
        tester = NetworkTester(NocConfig(width=4, height=4))
        rate = 0.30
        uniform = tester.run(TrafficConfig(pattern="uniform",
                                           injection_rate=rate, seed=1),
                             cycles=1500)
        hotspot = tester.run(TrafficConfig(pattern="hotspot",
                                           injection_rate=rate,
                                           hotspot_fraction=0.9, seed=1),
                             cycles=1500)
        # The hot ejection port bounds hotspot throughput well below
        # uniform's at the same offered load.
        assert hotspot.throughput < uniform.throughput

    def test_tornado_is_self_inverse_distance(self):
        from repro.noc.config import NocConfig
        from repro.noc.tester import NetworkTester, TrafficConfig
        tester = NetworkTester(NocConfig(width=4, height=4))
        result = tester.run(TrafficConfig(pattern="tornado",
                                          injection_rate=0.05, seed=2),
                            cycles=1500)
        assert result.delivered_packets > 0
        # Every tornado packet travels exactly w/2 + h/2 hops.
        assert result.avg_latency >= 2 + 2 * 4

    def test_bad_hotspot_fraction_rejected(self):
        import pytest
        from repro.noc.tester import TrafficConfig
        with pytest.raises(ValueError):
            TrafficConfig(pattern="hotspot", hotspot_fraction=1.5)
