"""NIC tests: notification announce/receive, ESID sequencing, stop bit,
back-pressure, and the reserved-VC eligibility oracle."""

import pytest

from repro.nic.controller import NetworkInterface
from repro.noc.config import NocConfig, NotificationConfig


def make_nic(node=0, ordered=True, **notif_overrides):
    noc = NocConfig()
    defaults = dict(bits_per_core=1, window=13, max_pending=4,
                    tracker_queue_depth=4)
    defaults.update(notif_overrides)
    notif = NotificationConfig(**defaults)
    return NetworkInterface(node, noc, notif, ordering_enabled=ordered)


class TestNotificationComposition:
    def test_no_pending_sends_nothing(self):
        nic = make_nic()
        assert nic.compose_notification() == 0

    def test_pending_announced_once(self):
        nic = make_nic(node=3)
        nic.pending_notifications = 1
        vector = nic.compose_notification()
        assert vector == 1 << 3
        assert nic.pending_notifications == 0
        assert nic.compose_notification() == 0

    def test_announce_capped_per_window(self):
        nic = make_nic(node=0, bits_per_core=1)
        nic.pending_notifications = 3
        assert nic.compose_notification() == 1   # only one per window
        assert nic.pending_notifications == 2

    def test_multibit_announces_more(self):
        nic = make_nic(node=0, bits_per_core=2)
        nic.pending_notifications = 3
        assert nic.compose_notification() == 3
        assert nic.pending_notifications == 0

    def test_unordered_nic_is_silent(self):
        nic = make_nic(ordered=False)
        nic.pending_notifications = 2
        assert nic.compose_notification() == 0


class TestStopBit:
    def fill_tracker(self, nic):
        for sid in range(nic.notif_config.tracker_queue_depth):
            nic.tracker.push(1 << (sid + 1))

    def test_full_queue_asserts_stop(self):
        nic = make_nic(node=2)
        self.fill_tracker(nic)
        vector = nic.compose_notification()
        stop_bit = nic.noc_config.n_nodes * nic.notif_config.bits_per_core
        assert vector >> stop_bit & 1

    def test_stopped_window_rolls_back_announcement(self):
        nic = make_nic(node=5)
        nic.pending_notifications = 1
        sent = nic.compose_notification()
        assert sent
        stop_bit = nic.noc_config.n_nodes * nic.notif_config.bits_per_core
        nic.receive_merged_notification(sent | (1 << stop_bit))
        # The announcement must be re-sent later.
        assert nic.pending_notifications == 1
        # And the NIC is suppressed until a clean window.
        nic.pending_notifications = 1
        assert nic.compose_notification() == 0
        nic.receive_merged_notification(0)   # clean window re-enables
        assert nic.compose_notification() != 0

    def test_clean_window_pushes_to_tracker(self):
        nic = make_nic()
        nic.receive_merged_notification(1 << 7)
        assert nic.tracker.current_esid() == 7


class TestBackpressure:
    def test_can_send_request_cap(self):
        nic = make_nic(max_pending=2)
        assert nic.can_send_request()
        nic.send_request(object())
        nic.send_request(object())
        assert not nic.can_send_request()
        with pytest.raises(RuntimeError):
            nic.send_request(object())

    def test_ordered_rejects_unicast_request(self):
        nic = make_nic()
        with pytest.raises(ValueError):
            nic.send_request(object(), dst=3)

    def test_unordered_accepts_unicast(self):
        nic = make_nic(ordered=False)
        nic.send_request(object(), dst=3)   # no exception


class TestRvcEligibility:
    def test_expected_request_is_eligible(self):
        nic = make_nic(node=0)
        nic.receive_merged_notification(1 << 4)   # sid 4 announced
        assert nic.current_esid() == 4
        assert nic.rvc_eligible(sid=4, seq=0)

    def test_unexpected_request_not_eligible(self):
        nic = make_nic(node=0)
        nic.receive_merged_notification(1 << 4)
        assert not nic.rvc_eligible(sid=9, seq=0)

    def test_consumed_transit_copy_is_eligible(self):
        # A copy of a request this NIC already consumed outranks anything
        # still pending here (it is bound for nodes further downstream).
        nic = make_nic(node=0)
        nic._consumed_counts[4] = 1
        assert nic.rvc_eligible(sid=4, seq=0)
        assert not nic.rvc_eligible(sid=4, seq=1)

    def test_future_seq_not_eligible(self):
        nic = make_nic(node=0)
        nic.receive_merged_notification(1 << 4)
        assert not nic.rvc_eligible(sid=4, seq=3)

    def test_unordered_never_eligible(self):
        nic = make_nic(ordered=False)
        assert not nic.rvc_eligible(sid=0, seq=0)
