"""Tests for the notification network and tracker — the heart of
SCORPIO's distributed ordering."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noc.config import NotificationConfig
from repro.notification.network import NotificationNetwork
from repro.notification.tracker import NotificationTracker
from repro.sim.engine import Engine


def build_network(width=6, height=6, window=13, bits=1):
    engine = Engine()
    config = NotificationConfig(bits_per_core=bits, window=window)
    net = NotificationNetwork(width, height, config, engine)
    return engine, net


class TestNotificationNetwork:
    def test_window_below_bound_rejected(self):
        engine = Engine()
        with pytest.raises(ValueError):
            NotificationNetwork(6, 6, NotificationConfig(window=5), engine)

    def test_minimum_window(self):
        assert NotificationConfig.minimum_window(6, 6) == 11
        assert NotificationConfig.minimum_window(10, 10) == 19

    def test_single_source_reaches_all(self):
        engine, net = build_network()
        received = {}
        for node in range(36):
            net.attach(node,
                       (lambda n: (lambda: net.encode(n, 1) if n == 7 else 0))(node),
                       (lambda n: (lambda v: received.__setitem__(n, v)))(node))
        engine.run(13)
        assert len(received) == 36
        assert all(v == received[0] for v in received.values())
        assert net.core_count(received[0], 7) == 1
        assert net.core_count(received[0], 8) == 0

    def test_merge_multiple_sources(self):
        engine, net = build_network()
        received = {}
        senders = {3, 17, 35}
        for node in range(36):
            net.attach(node,
                       (lambda n: (lambda: net.encode(n, 1)
                                   if n in senders else 0))(node),
                       (lambda n: (lambda v: received.__setitem__(n, v)))(node))
        engine.run(13)
        merged = received[0]
        for core in range(36):
            assert net.core_count(merged, core) == (1 if core in senders else 0)

    def test_multi_bit_counts(self):
        engine, net = build_network(bits=2)
        received = {}
        for node in range(36):
            net.attach(node,
                       (lambda n: (lambda: net.encode(n, 3) if n == 0 else 0))(node),
                       (lambda n: (lambda v: received.__setitem__(n, v)))(node))
        engine.run(13)
        assert net.core_count(received[5], 0) == 3

    def test_encode_rejects_overflow(self):
        _engine, net = build_network(bits=1)
        with pytest.raises(ValueError):
            net.encode(0, 2)

    def test_stop_bit_roundtrip(self):
        _engine, net = build_network()
        vector = net.encode(4, 1, stop=True)
        assert net.stop_asserted(vector)
        assert net.core_count(vector, 4) == 1

    def test_windows_are_independent(self):
        engine, net = build_network()
        log = []
        toggles = iter([5, 0, 9])  # sender per window (0 = nobody)

        state = {"sender": None}

        def source_for(node):
            def source():
                return net.encode(node, 1) if node == state["sender"] else 0
            return source

        for node in range(36):
            net.attach(node, source_for(node),
                       (lambda n: (lambda v: log.append((n, v))
                                   if n == 0 else None))(node))
        for sender in (5, None, 9):
            state["sender"] = sender
            engine.run(13)
        vectors = [v for _n, v in log]
        assert net.core_count(vectors[0], 5) == 1
        assert vectors[1] == 0
        assert net.core_count(vectors[2], 9) == 1
        assert net.core_count(vectors[2], 5) == 0

    @settings(max_examples=20, deadline=None)
    @given(width=st.integers(2, 7), height=st.integers(2, 7),
           senders=st.sets(st.integers(0, 48)))
    def test_property_all_nodes_agree(self, width, height, senders):
        n = width * height
        senders = {s % n for s in senders}
        engine = Engine()
        window = NotificationConfig.minimum_window(width, height)
        net = NotificationNetwork(width, height,
                                  NotificationConfig(window=window), engine)
        received = {}
        for node in range(n):
            net.attach(node,
                       (lambda k: (lambda: net.encode(k, 1)
                                   if k in senders else 0))(node),
                       (lambda k: (lambda v: received.__setitem__(k, v)))(node))
        engine.run(window)
        assert len(set(received.values())) == 1
        merged = received[0]
        decoded = {c for c in range(n) if net.core_count(merged, c)}
        assert decoded == senders


class TestNotificationTracker:
    def make(self, n=4, bits=1, depth=4):
        return NotificationTracker(n, bits, depth)

    def encode(self, tracker, counts):
        vector = 0
        for core, count in counts.items():
            vector |= count << (core * tracker.bits_per_core)
        return vector

    def test_esid_sequence_single_window(self):
        tracker = self.make()
        tracker.push(self.encode(tracker, {1: 1, 3: 1}))
        assert tracker.current_esid() == 1
        assert tracker.consume_esid() == 1
        assert tracker.current_esid() == 3
        tracker.consume_esid()
        assert tracker.current_esid() is None

    def test_rotating_priority_advances_per_message(self):
        tracker = self.make()
        tracker.push(self.encode(tracker, {0: 1, 1: 1}))
        tracker.consume_esid()
        tracker.consume_esid()
        # Pointer advanced to 1: next window orders 1 before 0.
        tracker.push(self.encode(tracker, {0: 1, 1: 1}))
        assert tracker.consume_esid() == 1
        assert tracker.consume_esid() == 0

    def test_multibit_expansion(self):
        tracker = self.make(bits=2)
        tracker.push(self.encode(tracker, {2: 3, 0: 1}))
        order = [tracker.consume_esid() for _ in range(4)]
        assert order == [0, 2, 2, 2]

    def test_queue_full_and_overrun(self):
        tracker = self.make(depth=2)
        tracker.push(self.encode(tracker, {0: 1}))
        tracker.push(self.encode(tracker, {1: 1}))
        assert tracker.queue_full
        with pytest.raises(RuntimeError):
            tracker.push(self.encode(tracker, {2: 1}))

    def test_consume_without_pending_raises(self):
        tracker = self.make()
        with pytest.raises(RuntimeError):
            tracker.consume_esid()

    def test_outstanding_counts_queue_and_expansion(self):
        tracker = self.make(bits=2)
        tracker.push(self.encode(tracker, {1: 2}))
        tracker.push(self.encode(tracker, {2: 1}))
        assert tracker.outstanding() == 3
        tracker.consume_esid()
        assert tracker.outstanding() == 2

    def test_two_trackers_agree(self):
        # The distributed-ordering property: same inputs -> same order.
        a, b = self.make(), self.make()
        windows = [{0: 1, 2: 1}, {1: 1}, {0: 1, 1: 1, 3: 1}]
        orders = [[], []]
        for tracker, out in ((a, orders[0]), (b, orders[1])):
            for counts in windows:
                tracker.push(self.encode(tracker, counts))
            while tracker.current_esid() is not None:
                out.append(tracker.consume_esid())
        assert orders[0] == orders[1]
