"""End-to-end notification-network stress: the stop-bit protocol and
multi-bit windows exercised through the full system (not just the NIC
unit tests)."""

from dataclasses import replace

from repro.cpu.core import CoreConfig
from repro.noc.config import NocConfig, NotificationConfig
from repro.systems.scorpio import ScorpioSystem
from repro.workloads.synthetic import uniform_random_trace


def run_with(notif, core=None, seed=107, n=9, ops=12):
    noc = NocConfig(width=3, height=3)
    traces = [uniform_random_trace(c, ops, 10, write_fraction=0.5,
                                   think=2, seed=seed) for c in range(n)]
    system = ScorpioSystem(traces=traces, noc=noc, notification=notif,
                           core=core)
    logs = {node: [] for node in range(n)}
    for node, nic in enumerate(system.nics):
        nic.add_request_listener(
            (lambda k: (lambda p, sid, c, a:
                        logs[k].append((sid, p.req_id))))(node))
    system.run_until_done(400_000)
    assert system.all_cores_finished()
    for node in range(1, n):
        assert logs[node] == logs[0], "global order diverged"
    return system


class TestStopBitUnderPressure:
    def test_depth1_tracker_queue_engages_stop_bit(self):
        # A 1-deep tracker queue fills under bursty load; the stop bit
        # must throttle every node's announcements — and the system
        # still completes with all nodes agreeing on one order.
        notif = NotificationConfig(window=13, max_pending=4,
                                   tracker_queue_depth=1)
        system = run_with(notif)
        assert system.stats.counter("nic.windows_stopped") > 0

    def test_deep_queue_never_stops(self):
        notif = NotificationConfig(window=13, max_pending=4,
                                   tracker_queue_depth=64)
        system = run_with(notif)
        assert system.stats.counter("nic.windows_stopped") == 0

    def test_stopping_costs_time_not_correctness(self):
        shallow = run_with(NotificationConfig(window=13,
                                              tracker_queue_depth=1))
        deep = run_with(NotificationConfig(window=13,
                                           tracker_queue_depth=64))
        assert shallow.total_completed_ops() == deep.total_completed_ops()
        assert shallow.engine.cycle >= deep.engine.cycle


class TestMultiBitWindows:
    def test_bursty_cores_complete_and_agree(self):
        # 2 bits/core announce up to 3 requests per window; cores with 4
        # outstanding messages generate real bursts.
        notif = NotificationConfig(bits_per_core=2, window=13,
                                   max_pending=8)
        core = CoreConfig(max_outstanding=4)
        run_with(notif, core=core)

    def test_more_bits_reduce_ordering_delay_for_bursts(self):
        core = CoreConfig(max_outstanding=4)
        waits = {}
        for bits in (1, 2):
            notif = NotificationConfig(bits_per_core=bits, window=13,
                                       max_pending=8)
            system = run_with(notif, core=core, ops=16)
            waits[bits] = system.stats.mean("nic.order_latency")
        # Fig. 8d's mechanism: a burst of k requests needs ceil(k/cap)
        # windows, so more bits per core cannot make ordering slower.
        assert waits[2] <= waits[1] * 1.05

    def test_window_length_bounds_order_latency(self):
        # Every request is ordered within ~2 windows of injection at
        # light load (announce at next window start + deliver by end).
        notif = NotificationConfig(window=13)
        system = run_with(notif, ops=4, seed=109)
        p95 = system.stats.histograms["nic.order_latency"].percentile(95)
        assert p95 <= 6 * notif.window
