"""Tests for the Figure-7 baselines: INSO and TokenB."""

import pytest

from repro.coherence.mosi import State
from repro.cpu.trace import Trace, TraceOp
from repro.noc.config import NocConfig
from repro.ordering_baselines.systems import InsoSystem, TokenBSystem
from repro.workloads.synthetic import uniform_random_trace

ADDR = 0x4000_0000


def pad(traces, n):
    return list(traces) + [Trace([])] * (n - len(traces))


def run_done(system, max_cycles=80_000):
    system.run_until_done(max_cycles)
    assert system.all_cores_finished()
    return system.engine.cycle


class TestInso:
    def test_basic_coherence(self):
        noc = NocConfig(width=3, height=3)
        system = InsoSystem(traces=pad([
            Trace([TraceOp("W", ADDR, 1)]),
            Trace([TraceOp("R", ADDR, 600)]),
        ], 9), expiration_window=20, noc=noc)
        run_done(system)
        assert system.l2s[0].state_of(ADDR) is State.O
        assert system.l2s[1].state_of(ADDR) is State.S

    def test_global_order_agreement(self):
        noc = NocConfig(width=3, height=3)
        traces = [uniform_random_trace(c, 8, 8, write_fraction=0.5,
                                       think=4, seed=5) for c in range(9)]
        system = InsoSystem(traces=traces, expiration_window=20, noc=noc)
        logs = {n: [] for n in range(9)}
        for node, nic in enumerate(system.nics):
            nic.add_request_listener(
                (lambda n: (lambda p, sid, c, a:
                            logs[n].append((sid, p.req_id))))(node))
        run_done(system, 150_000)
        for node in range(1, 9):
            assert logs[node] == logs[0]

    def test_expiry_messages_generated(self):
        noc = NocConfig(width=3, height=3)
        system = InsoSystem(traces=pad([Trace([TraceOp("R", ADDR, 1)])], 9),
                            expiration_window=20, noc=noc)
        run_done(system)
        assert system.stats.counter("inso.expiry_messages") > 0
        assert system.stats.counter("inso.slots_expired") > 0

    def test_larger_window_is_slower(self):
        noc = NocConfig(width=3, height=3)
        runtimes = {}
        for window in (20, 80):
            traces = [uniform_random_trace(c, 6, 8, write_fraction=0.4,
                                           think=4, seed=2)
                      for c in range(9)]
            system = InsoSystem(traces=traces, expiration_window=window,
                                noc=noc)
            runtimes[window] = run_done(system, 300_000)
        assert runtimes[80] > runtimes[20]

    def test_expiry_overhead_metric(self):
        noc = NocConfig(width=3, height=3)
        system = InsoSystem(traces=pad([Trace([TraceOp("R", ADDR, 1)])], 9),
                            expiration_window=20, noc=noc)
        run_done(system)
        assert system.expiry_overhead() > 0


class TestTokenB:
    def test_basic_coherence(self):
        noc = NocConfig(width=3, height=3)
        system = TokenBSystem(traces=pad([
            Trace([TraceOp("W", ADDR, 1)]),
            Trace([TraceOp("R", ADDR, 600)]),
        ], 9), noc=noc)
        run_done(system)
        assert system.l2s[1].state_of(ADDR) is State.S

    def test_conflicting_writers_eventually_converge(self):
        # Unordered broadcasts race; retries (and the memory fallback
        # standing in for TokenB's persistent requests) must still let
        # every writer finish, and never leave two owners.  A follow-up
        # reader must still be able to obtain the line.
        noc = NocConfig(width=3, height=3)
        writers = [Trace([TraceOp("W", ADDR, 1)]) for _ in range(4)]
        reader = [Trace([TraceOp("R", ADDR, 5000)])]
        system = TokenBSystem(traces=pad(writers + reader, 9),
                              noc=noc, retry_timeout=300)
        run_done(system, 300_000)
        owners = [l2.node for l2 in system.l2s
                  if l2.state_of(ADDR).is_owner]
        assert len(owners) <= 1
        assert system.l2s[4].state_of(ADDR) is not State.I

    def test_random_soak(self):
        noc = NocConfig(width=3, height=3)
        traces = [uniform_random_trace(c, 10, 10, write_fraction=0.4,
                                       think=5, seed=21) for c in range(9)]
        system = TokenBSystem(traces=traces, noc=noc, retry_timeout=300)
        run_done(system, 300_000)

    def test_no_ordering_wait(self):
        # TokenB delivers requests on arrival: ordering wait ~ 0.
        noc = NocConfig(width=3, height=3)
        system = TokenBSystem(traces=pad([
            Trace([TraceOp("R", ADDR, 1)]),
        ], 9), noc=noc)
        run_done(system)
        assert system.stats.mean("nic.ordering_wait") == 0.0
