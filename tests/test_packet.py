"""Unit tests for packets and flit-count arithmetic."""

import pytest

from repro.noc.packet import (Packet, VNet, control_packet_flits,
                              data_packet_flits)


class TestFlitCounts:
    def test_control_is_single_flit(self):
        assert control_packet_flits() == 1

    def test_16_byte_channel_matches_table1(self):
        # Table 1: 32 B lines, 16 B channels -> 3-flit data packets.
        assert data_packet_flits(16) == 3

    def test_8_byte_channel(self):
        # Sec. 5.2: 8 B channels need 5 flits per cache-line response.
        assert data_packet_flits(8) == 5

    def test_32_byte_channel(self):
        assert data_packet_flits(32) == 2

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            data_packet_flits(0)


class TestPacket:
    def test_broadcast_detection(self):
        bcast = Packet(vnet=VNet.GO_REQ, src=0, dst=None, sid=0, size_flits=1)
        unicast = Packet(vnet=VNet.UO_RESP, src=0, dst=5, sid=0, size_flits=3)
        assert bcast.is_broadcast
        assert not unicast.is_broadcast

    def test_unique_pids(self):
        a = Packet(vnet=VNet.GO_REQ, src=0, dst=None, sid=0, size_flits=1)
        b = Packet(vnet=VNet.GO_REQ, src=0, dst=None, sid=0, size_flits=1)
        assert a.pid != b.pid

    def test_vnet_values(self):
        assert VNet.GO_REQ != VNet.UO_RESP
        assert int(VNet.GO_REQ) == 0 and int(VNet.UO_RESP) == 1
