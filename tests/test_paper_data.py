"""Paper-data transcription tests (repro.analysis.paper_data)."""

import pytest

from repro.analysis import paper_data
from repro.analysis.paper_data import Claim, comparison_table


class TestTranscription:
    def test_headline_numbers(self):
        assert paper_data.RUNTIME_REDUCTION_VS_LPD == 0.241
        assert paper_data.RUNTIME_REDUCTION_VS_HT == 0.129
        assert paper_data.AVG_L2_SERVICE_CYCLES == {"scorpio": 78,
                                                    "lpd": 94, "ht": 91}

    def test_implied_ht_vs_lpd_is_between_zero_and_one(self):
        ratio = paper_data.ht_vs_lpd_runtime()
        # HT-D sits between SCORPIO and LPD-D: 0.759/0.871 ~ 0.871.
        assert 0.8 < ratio < 0.95
        assert ratio == pytest.approx((1 - 0.241) / (1 - 0.129))

    def test_fig9_totals_match_area_power_model(self):
        from repro.analysis.area_power import (CHIP_POWER_W,
                                               PAPER_TILE_POWER_PCT,
                                               TILE_POWER_MW)
        assert paper_data.CHIP_POWER_W == CHIP_POWER_W
        assert paper_data.TILE_POWER_MW == TILE_POWER_MW
        assert paper_data.NIC_ROUTER_POWER_PCT \
            == PAPER_TILE_POWER_PCT["nic_router"]

    def test_broadcast_capacity_is_inverse_square(self):
        # The paper rounds 1/36 = 0.0278 to "0.027 flits/node/cycle".
        assert paper_data.BROADCAST_CAPACITY[36] == pytest.approx(1 / 36,
                                                                  abs=1e-3)
        assert paper_data.BROADCAST_CAPACITY[100] == pytest.approx(1 / 100,
                                                                   abs=1e-3)

    def test_pipelining_gains_grow_with_cores(self):
        gains = paper_data.PIPELINING_GAIN
        assert gains[36] < gains[64] < gains[100]


class TestClaim:
    def test_ratio(self):
        claim = Claim("runtime", paper=0.759, measured=0.948)
        assert claim.ratio == pytest.approx(0.948 / 0.759)

    def test_ratio_none_without_measurement(self):
        assert Claim("x", paper=1.0).ratio is None

    def test_ratio_none_for_zero_paper(self):
        assert Claim("x", paper=0.0, measured=1.0).ratio is None


class TestComparisonTable:
    def test_renders_both_columns(self):
        text = comparison_table({
            "scorpio_vs_lpd": (0.759, 0.948),
            "scorpio_vs_ht": (0.871, None),
        })
        assert "0.759" in text and "0.948" in text
        assert "—" in text

    def test_measured_against_this_repo(self):
        # The EXPERIMENTS.md headline: measured 0.948 vs paper 0.759 —
        # compressed but the same side of 1.0.
        paper = 1 - paper_data.RUNTIME_REDUCTION_VS_LPD
        measured = 0.948
        assert paper < 1.0 and measured < 1.0
        text = comparison_table({"fig6a": (paper, measured)},
                                title="Figure 6a")
        assert text.startswith("Figure 6a")
