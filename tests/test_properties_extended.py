"""Property-based tests for the newer subsystems and core primitives:
ordering baselines (TS, Uncorq), INCF equivalence, arbiter fairness,
notification OR-merge algebra, region-tracker conservatism."""

import pytest
from hypothesis import assume, example, given, settings
from hypothesis import strategies as st

from repro.cache.region_tracker import RegionTracker
from repro.cpu.trace import Trace, TraceOp
from repro.noc.arbiter import RotatingPriorityArbiter, rotating_order
from repro.noc.config import NocConfig
from repro.noc.filtering import broadcast_subtree
from repro.noc.routing import LOCAL, broadcast_outports
from repro.ordering_baselines.systems import TimestampSystem, UncorqSystem
from repro.ordering_baselines.uncorq import snake_order
from repro.systems.directory import DirectorySystem

LINE = 32
BASE = 0x4000_0000


def traces_strategy(n_cores, max_ops=5, max_lines=5):
    op = st.tuples(st.sampled_from("RW"), st.integers(0, max_lines - 1),
                   st.integers(1, 30))
    thread = st.lists(op, max_size=max_ops)
    return st.lists(thread, min_size=n_cores, max_size=n_cores)


def build_traces(raw):
    return [Trace([TraceOp(op=o, addr=BASE + line * LINE, think=think)
                   for o, line, think in thread])
            for thread in raw]


class TestTimestampSoak:
    @settings(max_examples=8, deadline=None)
    @given(raw=traces_strategy(9))
    def test_completes_and_agrees(self, raw):
        system = TimestampSystem(traces=build_traces(raw),
                                 noc=NocConfig(width=3, height=3))
        logs = {n: [] for n in range(9)}
        for node, nic in enumerate(system.nics):
            nic.add_request_listener(
                (lambda k: (lambda p, sid, c, a:
                            logs[k].append((sid, p.req_id))))(node))
        system.run_until_done(200_000)
        assert system.all_cores_finished(), "TS soak deadlocked"
        for node in range(1, 9):
            assert logs[node] == logs[0], "TS global order diverged"
        assert system.late_arrivals() == 0


class TestUncorqSoak:
    # Pinned regression (seed-failure triage, PR 7): this trace set made
    # node 4's GETS stall long enough for Uncorq's retry timer to
    # rebroadcast it under the same req_id; the original copy then won,
    # completed the transaction and retired the MSHR, and the retry's
    # own-request copy arrived MSHR-less — crashing `_process_own`
    # instead of being dropped as stale (now counted under
    # ``l2.snoops.stale_own``; the strict no-MSHR invariant still holds
    # for non-retrying protocols like SCORPIO).
    @settings(max_examples=8, deadline=None)
    @example(raw=[[], [("W", 2, 14)], [("W", 0, 2), ("W", 2, 1)], [],
                  [("W", 2, 5), ("R", 2, 1)], [], [], [],
                  [("R", 0, 1), ("R", 0, 1), ("R", 2, 1)]])
    @given(raw=traces_strategy(9))
    def test_completes_with_single_owner(self, raw):
        system = UncorqSystem(traces=build_traces(raw),
                              noc=NocConfig(width=3, height=3))
        system.run_until_done(300_000)
        assert system.all_cores_finished(), "Uncorq soak deadlocked"
        from repro.coherence.mosi import State
        for line in range(5):
            addr = BASE + line * LINE
            owners = [l2.node for l2 in system.l2s
                      if l2.state_of(addr).is_owner]
            assert len(owners) <= 1, f"two owners for line {line}"


class TestIncfEquivalence:
    # The divergence this example pins down (seed-failure triage, PR 3):
    # core 1 runs R(3),R(0),W(3) while core 6 runs R(2),R(0),R(3) — a
    # classic data race on line 3.  Unfiltered, core 6's read beats
    # core 1's write (final states: core1=M, core6=I); with INCF the
    # pruned snoop branches change mesh arbitration timing, the write
    # wins the race instead, and the run ends core1=O, core6=S.  *Both*
    # configurations are coherent MOSI outcomes and both executions are
    # SC-admissible; INCF guarantees functional transparency (no snoop a
    # cache needs is ever suppressed — see
    # TestFilterTableProperties.test_never_false_negative_vs_oracle),
    # not cycle-level timing transparency.  Filtering removes flits from
    # the mesh, so races may legitimately resolve differently.  The
    # property below is therefore too strong by design, not a model bug;
    # it stays as a strict-xfail sentinel (the pinned @example always
    # runs first, keeping the xfail deterministic).  The real guarantee
    # is asserted by test_ht_incf_preserves_coherence below.
    @pytest.mark.xfail(
        strict=True,
        reason="INCF is functionally transparent, not timing-transparent: "
               "filtering changes arbitration timing, so racy traces may "
               "resolve races differently (still coherent, still SC)")
    @settings(max_examples=6, deadline=None)
    @example(raw=[[], [("R", 3, 11), ("R", 0, 1), ("W", 3, 1)],
                  [], [], [], [],
                  [("R", 2, 11), ("R", 0, 1), ("R", 3, 1)], [], []])
    @given(raw=traces_strategy(9, max_ops=4))
    def test_ht_incf_equals_unfiltered(self, raw):
        """Cycle-exact final-state equality between INCF on and off.

        Too strong — kept as a documented sentinel; see the class
        comment for the analysis of the pinned counterexample.
        """
        def final_states(incf):
            system = DirectorySystem(
                scheme="HT", traces=build_traces(raw),
                noc=NocConfig(width=3, height=3), incf=incf)
            system.run_until_done(200_000)
            assert system.all_cores_finished()
            return [[l2.state_of(BASE + line * LINE) for line in range(5)]
                    for l2 in system.l2s]

        assert final_states(False) == final_states(True)

    @settings(max_examples=6, deadline=None)
    @example(raw=[[], [("R", 3, 11), ("R", 0, 1), ("W", 3, 1)],
                  [], [], [], [],
                  [("R", 2, 11), ("R", 0, 1), ("R", 3, 1)], [], []])
    # Found by Hypothesis (PR 5): core 5's final W(1) upgrade completes
    # via its marker while the invalidation broadcast to core 8's S copy
    # is still in flight — at *core completion* the stale S coexists
    # with the new M, at *quiescence* it does not.  The invariant is a
    # quiescence property, hence the post-run drain below.
    @example(raw=[[], [], [], [], [],
                  [("R", 0, 1), ("R", 0, 1), ("W", 1, 1), ("W", 1, 1)],
                  [], [],
                  [("R", 0, 1), ("R", 0, 1), ("R", 1, 1)]])
    @given(raw=traces_strategy(9, max_ops=4))
    def test_ht_incf_preserves_coherence(self, raw):
        """What INCF actually guarantees: filtered runs complete and,
        once in-flight forwards drain, end in a coherent MOSI
        configuration (at most one owner per line; an M copy excludes
        all other copies)."""
        system = DirectorySystem(
            scheme="HT", traces=build_traces(raw),
            noc=NocConfig(width=3, height=3), incf=True)
        system.run_until_done(200_000)
        assert system.all_cores_finished(), "INCF run deadlocked"
        # Coherence is a quiescence invariant: run_until_done returns at
        # core completion, which may leave the last request's
        # invalidation broadcasts in flight.  Drain them before
        # checking final states.
        system.run(2_000)
        for line in range(5):
            addr = BASE + line * LINE
            states = [l2.state_of(addr) for l2 in system.l2s]
            owners = [s for s in states if s.is_owner]
            assert len(owners) <= 1, f"two owners for line {line}"
            if any(s.name == "M" for s in states):
                copies = [s for s in states if s.name != "I"]
                assert len(copies) == 1, \
                    f"M copy of line {line} coexists with other copies"


class TestArbiterProperties:
    @settings(max_examples=50, deadline=None)
    @given(n=st.integers(2, 12), start=st.integers(0, 11),
           rounds=st.integers(4, 40))
    def test_round_robin_fairness_under_full_load(self, n, start, rounds):
        # With every line asserted, n consecutive grants visit every
        # requester exactly once (no starvation, perfect rotation).
        arb = RotatingPriorityArbiter(n, start=start % n)
        grants = [arb.grant([True] * n) for _ in range(rounds * n)]
        for chunk_start in range(0, len(grants), n):
            chunk = grants[chunk_start:chunk_start + n]
            if len(chunk) == n:
                assert sorted(chunk) == list(range(n))

    @settings(max_examples=50, deadline=None)
    @given(n=st.integers(1, 16), pointer=st.integers(0, 15),
           asserted=st.sets(st.integers(0, 15)))
    def test_order_matches_stateless_helper(self, n, pointer, asserted):
        assume(all(a < n for a in asserted))
        arb = RotatingPriorityArbiter(n, start=pointer % n)
        lines = [i in asserted for i in range(n)]
        assert arb.order(lines) == rotating_order(n, pointer % n, asserted)

    @settings(max_examples=50, deadline=None)
    @given(n=st.integers(1, 16), pointer=st.integers(0, 15),
           asserted=st.sets(st.integers(0, 15)))
    def test_order_is_permutation_of_asserted(self, n, pointer, asserted):
        assume(all(a < n for a in asserted))
        order = rotating_order(n, pointer % n, asserted)
        assert sorted(order) == sorted(asserted)

    @settings(max_examples=30, deadline=None)
    @given(n=st.integers(2, 16), pointer=st.integers(0, 15),
           asserted=st.sets(st.integers(0, 15), min_size=1))
    def test_pointer_member_always_first(self, n, pointer, asserted):
        assume(all(a < n for a in asserted))
        pointer %= n
        order = rotating_order(n, pointer, asserted)
        if pointer in asserted:
            assert order[0] == pointer


class TestNotificationMergeAlgebra:
    """OR-merging is what lets notifications combine contention-free."""

    vectors = st.integers(min_value=0, max_value=(1 << 40) - 1)

    @settings(max_examples=60, deadline=None)
    @given(a=vectors, b=vectors, c=vectors)
    def test_or_merge_abelian_and_idempotent(self, a, b, c):
        assert a | b == b | a
        assert (a | b) | c == a | (b | c)
        assert a | a == a
        assert a | 0 == a

    @settings(max_examples=30, deadline=None)
    @given(sids=st.sets(st.integers(0, 35), min_size=1))
    def test_merged_vector_decodes_every_sender(self, sids):
        merged = 0
        for sid in sids:
            merged |= 1 << sid
        decoded = {i for i in range(36) if merged >> i & 1}
        assert decoded == sids


class TestRegionTrackerProperties:
    @settings(max_examples=50, deadline=None)
    @given(ops=st.lists(st.tuples(st.booleans(),
                                  st.integers(0, 15)), max_size=60))
    def test_never_false_negative(self, ops):
        # Any region holding at least one live line must report
        # may_cache=True (false negatives break coherence).
        tracker = RegionTracker(region_bytes=4096, entries=8)
        live = {}
        for insert, region in ops:
            addr = region * 4096 + 64
            if insert:
                tracker.line_inserted(addr)
                live[region] = live.get(region, 0) + 1
            elif live.get(region):
                tracker.line_evicted(addr)
                live[region] -= 1
        for region, count in live.items():
            if count > 0:
                assert tracker.may_cache(region * 4096 + 64)

    @settings(max_examples=40, deadline=None)
    @given(regions=st.lists(st.integers(0, 200), min_size=1, max_size=40))
    def test_saturation_is_conservative(self, regions):
        tracker = RegionTracker(region_bytes=4096, entries=4)
        for region in regions:
            tracker.line_inserted(region * 4096)
        if tracker.saturated:
            # Saturated trackers must never filter anything.
            assert tracker.may_cache(0xDEAD_0000)


class TestTopologyProperties:
    @settings(max_examples=40, deadline=None)
    @given(width=st.integers(2, 9), height=st.integers(2, 9))
    def test_snake_order_is_hamiltonian(self, width, height):
        order = snake_order(width, height)
        assert sorted(order) == list(range(width * height))
        for here, there in zip(order, order[1:]):
            dx = abs(here % width - there % width)
            dy = abs(here // width - there // width)
            assert dx + dy == 1

    @settings(max_examples=25, deadline=None)
    @given(width=st.integers(2, 7), height=st.integers(2, 7),
           src=st.integers(0, 48))
    def test_broadcast_subtrees_partition_all_nodes(self, width, height,
                                                    src):
        assume(src < width * height)
        outports = broadcast_outports(src, LOCAL, width, height)
        seen = []
        for port in outports:
            seen.extend(broadcast_subtree(src, port, width, height))
        assert sorted(seen) == list(range(width * height))


class TestFilterTableProperties:
    @settings(max_examples=50, deadline=None)
    @given(capacity=st.integers(1, 16),
           queries=st.lists(st.tuples(st.integers(0, 8),
                                      st.integers(0, 31)),
                            min_size=1, max_size=80))
    def test_never_false_negative_vs_oracle(self, capacity, queries):
        # Whatever the capacity, the table may only ADD forwarding
        # (return True where the oracle says False), never suppress it.
        from repro.noc.filtering import FilterTable
        interested = {(n, r) for n in range(9) for r in range(32)
                      if (n * 31 + r) % 3 == 0}
        oracle = lambda node, addr: (node, addr // 4096) in interested
        table = FilterTable(oracle, capacity=capacity)
        for node, region in queries:
            addr = region * 4096 + 128
            if oracle(node, addr):
                assert table(node, addr) is True

    @settings(max_examples=30, deadline=None)
    @given(queries=st.lists(st.integers(0, 31), min_size=1, max_size=60))
    def test_tracked_count_never_exceeds_capacity(self, queries):
        from repro.noc.filtering import FilterTable
        table = FilterTable(lambda n, a: False, capacity=4)
        for region in queries:
            table(0, region * 4096)
            assert table.tracked_regions() <= 4


class TestLogicalRingProperties:
    @settings(max_examples=30, deadline=None)
    @given(width=st.integers(2, 7), height=st.integers(2, 7),
           origin=st.integers(0, 48), start=st.integers(0, 50))
    def test_completion_equals_traversal_latency(self, width, height,
                                                 origin, start):
        from repro.noc.config import NocConfig
        from repro.ordering_baselines.uncorq import LogicalRing
        from repro.sim.stats import StatsRegistry
        assume(origin < width * height)
        ring = LogicalRing(NocConfig(width=width, height=height),
                           StatsRegistry())
        done = {}
        ring.launch(1, origin, start, lambda rid, c: done.setdefault(rid, c))
        deadline = start + ring.traversal_latency()
        for cycle in range(start, deadline + 2):
            ring.step(cycle)
        # Origin-independent: a full circle costs the same from anywhere.
        assert done[1] == deadline


class TestNotificationEndToEnd:
    @settings(max_examples=20, deadline=None)
    @given(announcements=st.lists(
        st.sets(st.integers(0, 8)), min_size=1, max_size=6))
    def test_all_trackers_derive_identical_esid_sequences(self,
                                                          announcements):
        # Feed the same window vectors to N independent trackers (what
        # the OR-mesh guarantees) and drain them in different
        # interleavings: the (position, esid) sequences must coincide.
        from repro.notification.tracker import NotificationTracker
        trackers = [NotificationTracker(9, 1, queue_depth=64)
                    for _ in range(3)]
        for senders in announcements:
            vector = 0
            for sid in senders:
                vector |= 1 << sid
            if not vector:
                continue
            for tracker in trackers:
                tracker.push(vector)
        sequences = []
        for tracker in trackers:
            seq = []
            while tracker.current_esid() is not None:
                seq.append((tracker.consumed, tracker.current_esid()))
                tracker.consume_esid()
            sequences.append(seq)
        assert sequences[0] == sequences[1] == sequences[2]
