"""Differential identity suite for the quiescence-aware kernel.

The sleep/wake scheduling in :mod:`repro.sim.engine` is a pure
performance feature: its contract is that a run with quiescence enabled
is *cycle-for-cycle identical* to the naive always-tick kernel.  This
suite enforces the contract end to end:

* every registered system builder runs once with quiescence on and once
  with it off, and the resulting ``SweepResult`` payloads must serialize
  **byte-identically** (runtime, completed ops, every stats counter and
  histogram mean, litmus observations — everything the cache would
  store);
* the golden cycle/flit/request counts of ``tests/test_golden_stats.py``
  are re-asserted here for the quiescence-on path, so the goldens can
  never silently drift to "whatever the new kernel produces";
* a Hypothesis property test drives random networks of toy ``Clocked``
  components with randomized send/sleep schedules against a naive
  reference engine and requires equal state traces (no missed wakes, no
  spurious state changes).
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import ChipConfig
from repro.experiments import (SystemSpec, builder_names,
                               execute_system_spec)
from repro.experiments.sweep import SweepResult
from repro.sim.engine import Clocked, Engine, forced_quiescence

BENCH = {"kind": "benchmark", "name": "fft", "ops_per_core": 8,
         "workload_scale": 0.02, "think_scale": 10.0, "seed": 0}


def _cfg():
    return ChipConfig.variant(3, 3)


def _specs():
    """One spec per registered builder (mirrors test_golden_stats)."""
    cfg = _cfg()
    return {
        "scorpio": SystemSpec("scorpio", cfg, workload=BENCH),
        "directory-lpd": SystemSpec("directory", cfg,
                                    params={"scheme": "LPD"},
                                    workload=BENCH),
        "directory-ht-incf": SystemSpec("directory", cfg,
                                        params={"scheme": "HT",
                                                "incf": True},
                                        workload=BENCH),
        "multimesh": SystemSpec("multimesh", cfg,
                                params={"n_meshes": 2}, workload=BENCH),
        "tokenb": SystemSpec("tokenb", cfg, workload=BENCH),
        "inso": SystemSpec("inso", cfg,
                           params={"expiration_window": 40},
                           workload=BENCH),
        "timestamp": SystemSpec("timestamp", cfg, workload=BENCH),
        "uncorq": SystemSpec("uncorq", cfg, workload=BENCH),
        "scorpio-locks": SystemSpec("scorpio", cfg,
                                    workload={"kind": "locks",
                                              "acquisitions_per_core": 2,
                                              "seed": 1}),
        "scorpio-barrier": SystemSpec("scorpio", cfg,
                                      workload={"kind": "barrier",
                                                "phases": 2, "seed": 2}),
        "uncorq-lone-write": SystemSpec("uncorq", cfg,
                                        workload={"kind": "lone_write"}),
        "litmus-mp": SystemSpec("litmus", cfg,
                                params={"name": "message-passing",
                                        "threads": [[["W", "x"],
                                                     ["W", "y"]],
                                                    [["R", "y"],
                                                     ["R", "x"]]]}),
    }


# The same cycle/flit/request goldens test_golden_stats pins, re-checked
# on the quiescence-ON path: quiescence must never require regeneration.
GOLDEN = {
    "scorpio": {"runtime": 708, "flits": 1783, "requests": 71},
    "scorpio-locks": {"runtime": 820, "flits": 2193, "requests": 87},
    "uncorq-lone-write": {"runtime": 106, "flits": 23, "requests": 1},
}


def _payload_bytes(spec: SystemSpec) -> bytes:
    outcome = execute_system_spec(spec)
    result = SweepResult.from_outcome(spec, "fingerprint-elided", outcome)
    return json.dumps(result.payload(), sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def test_every_registered_builder_is_covered():
    covered = {spec.builder for spec in _specs().values()}
    assert covered == set(builder_names()), (
        "builders without differential coverage: "
        f"{sorted(set(builder_names()) - covered)}")


@pytest.mark.parametrize("case", sorted(_specs()))
def test_quiescence_payload_identity(case):
    spec = _specs()[case]
    with forced_quiescence(True):
        on = _payload_bytes(spec)
    with forced_quiescence(False):
        off = _payload_bytes(spec)
    assert on == off, (
        f"{case!r}: quiescence changed the simulated outcome — the "
        "sleep/wake protocol of some component is unsound (a skipped "
        "step was not a no-op, or a wake was missed)")


@pytest.mark.parametrize("case", sorted(GOLDEN))
def test_quiescence_on_matches_goldens(case):
    with forced_quiescence(True):
        outcome = execute_system_spec(_specs()[case])
    observed = {
        "runtime": outcome.runtime,
        "flits": int(outcome.stats.get("noc.flits.transmitted", 0)),
        "requests": int(outcome.stats.get("nic.requests_sent", 0)),
    }
    assert observed == GOLDEN[case]


def test_quiescence_actually_engages():
    """Guard against the trivial pass: the identity tests would also
    succeed if nothing ever slept.  A think-heavy run must skip ticks."""
    from repro.experiments.builders import get_builder, resolve_workload
    cfg = _cfg()
    workload = dict(BENCH, think_scale=60.0)
    traces = resolve_workload(workload).build_traces(cfg.n_cores)
    builder = get_builder("scorpio")
    with forced_quiescence(True):
        system = builder.construct(cfg, {}, traces)
        system.run_until_done(400_000)
    engine = system.engine
    assert engine.quiescence
    skipped = engine.cycles_fast_forwarded
    assert engine.ticks_executed + skipped == engine.cycle
    assert skipped > 0, "no cycle was ever fast-forwarded"
    assert system.stats.get_meta("engine.cycles_fast_forwarded") == skipped
    # Kernel accounting must stay out of result payloads (it differs
    # between modes; payloads must not).
    assert "engine.ticks_executed" not in system.stats.snapshot()


# ---------------------------------------------------------------------------
# Saturated regime: the event-scheduled hot path under heavy contention
# ---------------------------------------------------------------------------

# High injection, almost no think time: switch allocation loses, lookaheads
# get denied, VCs sit blocked behind exhausted credits.  This is the regime
# the batched VC/credit bookkeeping (blocked-VC memos, unblock serials,
# availability caches, the lookahead fast path) actually exercises — the
# quiet-mesh cases above barely touch those branches.
SATURATED = {"kind": "benchmark", "name": "fft", "ops_per_core": 16,
             "workload_scale": 0.05, "think_scale": 0.5, "seed": 0}


class TestSaturatedRegime:
    """Differential identity where the routers are genuinely congested."""

    @staticmethod
    def _specs():
        cfg = _cfg()
        return {
            "scorpio": SystemSpec("scorpio", cfg, workload=SATURATED),
            "uncorq": SystemSpec("uncorq", cfg, workload=SATURATED),
            "multimesh": SystemSpec("multimesh", cfg,
                                    params={"n_meshes": 2},
                                    workload=SATURATED),
        }

    @pytest.mark.parametrize("case", ["scorpio", "uncorq", "multimesh"])
    def test_saturated_payload_identity(self, case):
        spec = self._specs()[case]
        with forced_quiescence(True):
            on = _payload_bytes(spec)
        with forced_quiescence(False):
            off = _payload_bytes(spec)
        assert on == off, (
            f"{case!r}: quiescence changed a saturated run — a blocked-VC "
            "memo, availability cache, or unblock serial diverged between "
            "the event-scheduled and always-scan paths")

    @pytest.mark.parametrize("case", ["scorpio", "uncorq", "multimesh"])
    def test_saturation_actually_engages(self, case):
        """Guard against the trivial pass: these runs must actually hit
        the contended branches (buffered packets, denied lookaheads), or
        the identity assertion above proves nothing about the hot path."""
        with forced_quiescence(True):
            outcome = execute_system_spec(self._specs()[case])
        stats = outcome.stats
        assert stats.get("noc.router.buffered", 0) > 100
        assert stats.get("noc.la.denied", 0) > 50


# ---------------------------------------------------------------------------
# Property test: toy networks against a naive reference engine
# ---------------------------------------------------------------------------

class ToyNode(Clocked):
    """A component with a randomized send schedule and event inbox.

    It sleeps as aggressively as its knowledge allows (next scheduled
    send, earliest queued due event) and relies on peers' wakes for
    everything else — exactly the discipline the real components follow.
    ``quiescent=False`` turns both the sleeping and the waking off, which
    on a naive engine reproduces the always-tick reference behaviour.
    """

    def __init__(self, idx, sends, quiescent=True):
        self.idx = idx
        self.sends = sorted(sends)        # (cycle, target, delay)
        self._next_send = 0
        self.inbox = []                   # (due_cycle, payload)
        self.trace = []                   # (cycle, kind, detail)
        self.peers = []
        self.quiescent = quiescent

    def deliver(self, due_cycle, payload):
        self.inbox.append((due_cycle, payload))
        if self.quiescent:
            self.wake(due_cycle)

    def step(self, cycle):
        due = [e for e in self.inbox if e[0] <= cycle]
        if due:
            self.inbox = [e for e in self.inbox if e[0] > cycle]
            for _due, payload in due:
                self.trace.append((cycle, "recv", payload))
        while self._next_send < len(self.sends) \
                and self.sends[self._next_send][0] <= cycle:
            _c, target, delay = self.sends[self._next_send]
            self._next_send += 1
            # Two-phase discipline: cross-component events land at
            # cycle + 1 at the earliest.
            self.peers[target].deliver(cycle + 1 + delay,
                                       (self.idx, cycle))
            self.trace.append((cycle, "send", target))
        if self.quiescent:
            nxt = self.sends[self._next_send][0] \
                if self._next_send < len(self.sends) else None
            for due_cycle, _payload in self.inbox:
                if nxt is None or due_cycle < nxt:
                    nxt = due_cycle
            self.idle_until(nxt)


def _run_toy(schedules, cycles, quiescent):
    engine = Engine(quiescence=quiescent)
    nodes = [ToyNode(idx, sends, quiescent=quiescent)
             for idx, sends in enumerate(schedules)]
    for node in nodes:
        node.peers = nodes
        engine.register(node)
    engine.run(cycles)
    return engine, nodes


@st.composite
def toy_schedules(draw):
    n_nodes = draw(st.integers(2, 5))
    schedules = []
    for _ in range(n_nodes):
        n_sends = draw(st.integers(0, 6))
        sends = [(draw(st.integers(0, 40)),
                  draw(st.integers(0, n_nodes - 1)),
                  draw(st.integers(0, 15)))
                 for _ in range(n_sends)]
        schedules.append(sends)
    return schedules


@settings(max_examples=60, deadline=None)
@given(schedules=toy_schedules())
def test_property_toy_networks_match_naive_reference(schedules):
    cycles = 80   # past every send (<=40) + delay (<=16) + chained wakes
    quiescent_engine, quiescent = _run_toy(schedules, cycles, True)
    naive_engine, naive = _run_toy(schedules, cycles, False)
    assert naive_engine.cycle == quiescent_engine.cycle == cycles
    for q_node, n_node in zip(quiescent, naive):
        assert q_node.trace == n_node.trace, (
            f"node {q_node.idx} diverged under quiescence")
        # No missed wakes: every event due within the horizon was seen.
        assert q_node.inbox == n_node.inbox
        assert not [e for e in q_node.inbox if e[0] <= cycles - 1]


@settings(max_examples=30, deadline=None)
@given(schedules=toy_schedules(), data=st.data())
def test_property_fast_forward_preserves_run_length(schedules, data):
    """Fast-forwarding must never change how many cycles run() reports,
    nor the final clock, whatever the activity pattern."""
    cycles = data.draw(st.integers(1, 120))
    quiescent_engine, _ = _run_toy(schedules, cycles, True)
    assert quiescent_engine.cycle == cycles
    assert (quiescent_engine.ticks_executed
            + quiescent_engine.cycles_fast_forwarded) == cycles
