"""Region-tracker "evict" policy tests: RegionScout-style region
eviction with L2 force-invalidation (the hardware-faithful alternative
to the default saturate policy)."""

from dataclasses import replace

import pytest

from repro.cache.region_tracker import RegionTracker
from repro.coherence.l2_controller import CacheConfig
from repro.coherence.mosi import State
from repro.cpu.trace import Trace, TraceOp
from repro.noc.config import NocConfig
from repro.systems.scorpio import ScorpioSystem
from repro.workloads.synthetic import uniform_random_trace

LINE = 32
REGION = 4096
ADDR = 0x4000_0000


class TestTrackerEvictPolicy:
    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError, match="policy"):
            RegionTracker(policy="flush-all")

    def test_evict_returns_lru_victim(self):
        tracker = RegionTracker(entries=2, policy="evict")
        assert tracker.line_inserted(0 * REGION) is None
        assert tracker.line_inserted(1 * REGION) is None
        victim = tracker.line_inserted(2 * REGION)
        assert victim == 0
        assert tracker.region_evictions == 1
        assert not tracker.saturated

    def test_reinsertion_refreshes_lru(self):
        tracker = RegionTracker(entries=2, policy="evict")
        tracker.line_inserted(0 * REGION)
        tracker.line_inserted(1 * REGION)
        tracker.line_inserted(0 * REGION + LINE)   # touch region 0
        victim = tracker.line_inserted(2 * REGION)
        assert victim == 1                          # region 1 is now LRU

    def test_saturate_policy_unchanged(self):
        tracker = RegionTracker(entries=2, policy="saturate")
        tracker.line_inserted(0 * REGION)
        tracker.line_inserted(1 * REGION)
        assert tracker.line_inserted(2 * REGION) is None
        assert tracker.saturated

    def test_may_cache_false_for_evicted_region(self):
        tracker = RegionTracker(entries=1, policy="evict")
        tracker.line_inserted(0 * REGION)
        tracker.line_inserted(1 * REGION)
        assert not tracker.may_cache(0 * REGION)
        assert tracker.may_cache(1 * REGION)


def evict_system(traces, entries=2):
    noc = NocConfig(width=3, height=3)
    cache = CacheConfig(region_policy="evict", region_entries=entries)
    n = 9
    traces = list(traces) + [Trace([])] * (n - len(traces))
    return ScorpioSystem(traces=traces, noc=noc, cache=cache)


class TestL2ForceInvalidation:
    def test_region_flush_invalidates_stable_lines(self):
        # Touch 3 regions with a 2-entry tracker: the first region's
        # lines must be flushed from the array.
        ops = [TraceOp("R", ADDR + region * REGION, 1 + region * 400)
               for region in range(3)]
        system = evict_system([Trace(ops)])
        system.run_until_done(100_000)
        assert system.all_cores_finished()
        assert system.stats.counter("l2.region_flushes") >= 1
        assert system.l2s[0].state_of(ADDR) is State.I
        assert system.l2s[0].state_of(ADDR + 2 * REGION) is not State.I

    def test_dirty_lines_write_back_on_flush(self):
        ops = [TraceOp("W", ADDR, 1),
               TraceOp("R", ADDR + REGION, 500),
               TraceOp("R", ADDR + 2 * REGION, 1000)]
        system = evict_system([Trace(ops)])
        system.run_until_done(150_000)
        assert system.all_cores_finished()
        system.run(3000)   # drain the in-flight PUT + writeback data
        assert system.stats.counter("l2.region_flushes") >= 1
        # The dirty line of the evicted region went back to memory.
        assert system.stats.counter("mc.writebacks_received") >= 1
        assert system.l2s[0].state_of(ADDR) is State.I

    def test_filter_stays_conservative_after_flush(self):
        # After flushing region 0, its snoops may be filtered — but the
        # data must still be obtainable (memory serves it).
        writer = Trace([TraceOp("W", ADDR, 1),
                        TraceOp("R", ADDR + REGION, 500),
                        TraceOp("R", ADDR + 2 * REGION, 900)])
        reader = Trace([TraceOp("R", ADDR, 4000)])
        system = evict_system([writer, reader])
        system.run_until_done(200_000)
        assert system.all_cores_finished()
        assert system.l2s[1].state_of(ADDR) is not State.I

    def test_random_soak_with_tiny_region_table(self):
        traces = [uniform_random_trace(c, 10, 30, write_fraction=0.4,
                                       think=4, seed=113)
                  for c in range(9)]
        # Spread the working set across many regions so evictions fire.
        spread = []
        for trace in traces:
            spread.append(Trace([
                TraceOp(op.op, op.addr + (i % 5) * REGION, op.think)
                for i, op in enumerate(trace)]))
        system = evict_system(spread, entries=2)
        system.run_until_done(400_000)
        assert system.all_cores_finished()
        owners = {}
        for l2 in system.l2s:
            for set_index, line in l2.array.lines():
                if line.state.is_owner:
                    addr = l2.array.addr_of(set_index, line)
                    assert addr not in owners, "two owners after flushes"
                    owners[addr] = l2.node
