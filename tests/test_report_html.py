"""Observability HTML report: structure, self-containedness, drift gate.

The report is rendered from instrumented re-runs of an experiment
document.  These tests parse the emitted SVG (cell counts must equal
the mesh size), assert the file references nothing external, and prove
the digest cross-check actually fires on drift.
"""

import re

import pytest

from repro.analysis.report_html import (MAX_HEATMAP_WINDOWS,
                                        ObservabilityDriftError,
                                        _select_windows,
                                        collect_observations,
                                        render_report_html, result_digest,
                                        write_html_report)
from repro.api import experiment_from_dict, run_experiment

_DOCUMENT = {
    "schema": 1, "name": "report-smoke",
    "description": "observability report smoke",
    "configs": {"mesh3x3": {"preset": "variant", "width": 3,
                            "height": 3}},
    "runs": [
        {"builder": "scorpio", "config": "mesh3x3", "label": "scorpio",
         "workload": {"kind": "benchmark", "name": "fft",
                      "ops_per_core": 8, "workload_scale": 0.02,
                      "think_scale": 10.0, "seed": 0}},
        {"builder": "multimesh", "config": "mesh3x3", "label": "mm2",
         "params": {"n_meshes": 2},
         "workload": {"kind": "benchmark", "name": "fft",
                      "ops_per_core": 8, "workload_scale": 0.02,
                      "think_scale": 10.0, "seed": 0}},
    ],
    "report": {"journal_capacity": 256, "sample_interval": 32,
               "journal_tail": 10},
}


@pytest.fixture(scope="module")
def rendered():
    experiment = experiment_from_dict(dict(_DOCUMENT))
    outcome = run_experiment(experiment, jobs=1, cache=False)
    observations = collect_observations(experiment, outcome.results)
    html = render_report_html(experiment, observations)
    return experiment, outcome, observations, html


def test_every_heatmap_has_one_cell_per_mesh_node(rendered):
    _experiment, _outcome, observations, html = rendered
    svgs = re.findall(r'<svg class="mesh".*?</svg>', html)
    assert svgs, "report contains no mesh heatmaps"
    for svg in svgs:
        cells = re.findall(r'<rect class="cell"', svg)
        assert len(cells) == 3 * 3   # one rect per node, multimesh folded
    # Two metrics (occupancy + in-flight) per selected window, per run.
    expected = sum(
        2 * len(_select_windows(len(obs.samples)))
        for obs in observations)
    assert len(svgs) == expected


def test_report_is_self_contained(rendered):
    _experiment, _outcome, _observations, html = rendered
    assert html.startswith("<!DOCTYPE html>")
    assert "<script" not in html
    assert not re.search(r'(?:src|href)\s*=\s*["\']https?://', html)
    assert "<style>" in html


def test_report_carries_journal_tail_and_progress(rendered):
    _experiment, _outcome, observations, html = rendered
    assert "Sweep progress" in html
    assert html.count("match</span>") == len(observations)
    assert "DRIFT" not in html
    for obs in observations:
        assert obs.digest_matches
        assert len(obs.journal_tail) <= 10     # [report] journal_tail
        assert obs.journal_records <= 256      # [report] journal_capacity
        assert obs.samples, "sampler produced no windows"
    assert "Journal tail" in html


def test_timelines_render_one_polyline_pair_per_run(rendered):
    _experiment, _outcome, observations, html = rendered
    timelines = re.findall(r'<svg class="timeline".*?</svg>', html)
    assert len(timelines) == len(observations)
    for svg in timelines:
        assert svg.count("<polyline") == 2     # occupancy + in-flight


def test_write_html_report_creates_file(rendered, tmp_path):
    experiment, outcome, _observations, _html = rendered
    path = write_html_report(tmp_path / "obs", experiment,
                             outcome.results)
    assert path.name == "report.html"
    text = path.read_text(encoding="utf-8")
    assert "report-smoke" in text


def test_drift_raises(rendered):
    """A tampered envelope result must trip the digest cross-check."""
    experiment, outcome, _observations, _html = rendered
    tampered = list(outcome.results)
    import copy
    broken = copy.deepcopy(tampered[0])
    broken.runtime += 1
    tampered[0] = broken
    with pytest.raises(ObservabilityDriftError, match="run 0"):
        collect_observations(experiment, tampered)


def test_result_digest_tracks_payload(rendered):
    _experiment, outcome, _observations, _html = rendered
    first = outcome.results[0]
    assert result_digest(first) == result_digest(first)
    import copy
    other = copy.deepcopy(first)
    other.stats = dict(other.stats, **{"x.y": 1.0})
    assert result_digest(other) != result_digest(first)
    # label/cached are display bookkeeping, not payload.
    relabelled = copy.deepcopy(first)
    relabelled.label, relabelled.cached = "else", True
    assert result_digest(relabelled) == result_digest(first)


def test_select_windows_downsamples_with_endpoints():
    assert _select_windows(5) == [0, 1, 2, 3, 4]
    picked = _select_windows(100)
    assert len(picked) <= MAX_HEATMAP_WINDOWS
    assert picked[0] == 0 and picked[-1] == 99
    assert picked == sorted(set(picked))
