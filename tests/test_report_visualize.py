"""Report driver and mesh-visualization tests."""

import pytest

from repro.analysis.report import DEFAULT_FIGURES, build_report
from repro.noc.config import NocConfig
from repro.noc.visualize import (compact_number, hotspot_nodes,
                                 occupancy_map, render_grid,
                                 render_heatmap, traffic_map)


class TestBuildReport:
    def test_default_report(self, tmp_path):
        artifacts = build_report(tmp_path / "results")
        for fig_id in DEFAULT_FIGURES:
            assert artifacts[fig_id].exists()
            assert artifacts[fig_id].read_text().strip()
        index = artifacts["index"].read_text()
        for fig_id in DEFAULT_FIGURES:
            assert fig_id in index

    def test_unknown_figure_rejected_before_work(self, tmp_path):
        with pytest.raises(KeyError, match="fig99"):
            build_report(tmp_path, figures=["table1", "fig99"])
        assert not (tmp_path / "table1.txt").exists()

    def test_creates_nested_directory(self, tmp_path):
        artifacts = build_report(tmp_path / "a" / "b",
                                 figures=["table1"])
        assert artifacts["table1"].exists()

    def test_simulated_figure_in_report(self, tmp_path):
        artifacts = build_report(tmp_path, figures=["fig8d"])
        text = artifacts["fig8d"].read_text()
        assert "1.000" in text


class TestRenderGrid:
    def test_grid_shape(self):
        config = NocConfig(width=3, height=2)
        values = {n: float(n) for n in range(6)}
        text = render_grid(values, config)
        rows = text.splitlines()
        assert len(rows) == 2
        # North row (nodes 3,4,5) prints first.
        assert "3" in rows[0] and "0" in rows[1]

    def test_missing_nodes_default_zero(self):
        config = NocConfig(width=2, height=2)
        text = render_grid({0: 7.0}, config)
        assert "7" in text

    def test_narrow_cells_rejected(self):
        with pytest.raises(ValueError):
            render_grid({}, NocConfig(width=2, height=2), cell_width=2)

    def test_wide_values_compact_instead_of_truncating(self):
        """12345 used to render as '1234' (silent digit drop); the
        width-aware formatter must shift notation, never truncate."""
        config = NocConfig(width=2, height=1)
        text = render_grid({0: 12345.0, 1: 2.0}, config)  # 4-char cells
        assert "1234" not in text
        assert "1e4" in text
        assert "2" in text

    def test_compact_number_candidates(self):
        assert compact_number(12345.0, 4) == "1e4"
        assert compact_number(12345.0, 6) == "12345"
        assert compact_number(0.0, 4) == "0"
        assert compact_number(-12345.0, 4) == "-1e4"
        assert compact_number(0.25, 4) == "0.25"
        with pytest.raises(ValueError, match="cell_width"):
            compact_number(1e-300, 2)

    def test_unrepresentable_value_raises(self):
        config = NocConfig(width=1, height=1)
        with pytest.raises(ValueError, match="cell_width"):
            render_grid({0: 1.23456e-300}, config, cell_width=3)

    def test_out_of_range_node_ids_raise(self):
        """A mis-sized NocConfig must fail loudly, not render a
        plausible-looking grid with the out-of-mesh nodes dropped."""
        config = NocConfig(width=2, height=2)
        with pytest.raises(ValueError, match=r"\[4\]"):
            render_grid({0: 1.0, 4: 9.0}, config)
        with pytest.raises(ValueError, match="outside"):
            render_heatmap({-1: 3.0}, config)

    def test_overlong_custom_label_raises(self):
        config = NocConfig(width=1, height=1)
        with pytest.raises(ValueError, match="wider than"):
            render_grid({0: 1.0}, config, cell_width=3,
                        label=lambda v: "toolong")


class TestHeatmap:
    def test_peak_gets_darkest_shade(self):
        config = NocConfig(width=2, height=2)
        text = render_heatmap({0: 1.0, 1: 10.0, 2: 0.0, 3: 5.0}, config)
        assert "@" in text
        assert " " in text

    def test_all_zero_renders_blank(self):
        config = NocConfig(width=2, height=2)
        text = render_heatmap({n: 0.0 for n in range(4)}, config)
        assert set(text) <= {" ", "\n"}

    def test_hotspot_nodes(self):
        values = {0: 1.0, 1: 10.0, 2: 6.0, 3: 0.0}
        assert hotspot_nodes(values) == [1, 2]
        assert hotspot_nodes(values, threshold=0.9) == [1]
        assert hotspot_nodes({}) == []


class TestLiveMaps:
    def test_occupancy_map_on_live_system(self):
        from repro.cpu.trace import Trace
        from repro.systems.scorpio import ScorpioSystem
        system = ScorpioSystem(traces=[Trace([]) for _ in range(9)],
                               noc=NocConfig(width=3, height=3))
        system.run(50)
        values = occupancy_map(system.mesh)
        assert set(values) == set(range(9))
        assert all(v == 0.0 for v in values.values())

    def test_traffic_map_after_tester_run(self):
        from repro.noc.tester import NetworkTester, TrafficConfig
        from repro.noc.mesh import Mesh
        from repro.sim.engine import Engine
        from repro.sim.stats import StatsRegistry
        import random
        from repro.noc.tester import NodeTester

        noc = NocConfig(width=3, height=3)
        engine = Engine()
        mesh = Mesh(noc, engine, StatsRegistry())
        testers = []
        traffic = TrafficConfig(pattern="uniform", injection_rate=0.05)
        for node in range(9):
            tester = NodeTester(node, noc, traffic, StatsRegistry(),
                                random.Random(node))
            router = mesh.attach(node, tester)
            tester.attach(router)
            engine.register(tester)
            testers.append(tester)
        engine.run(500)
        values = traffic_map(testers)
        assert sum(values.values()) > 0
        text = render_heatmap(values, noc)
        assert len(text.splitlines()) == 3
