"""Router + mesh integration tests: latencies, broadcast delivery,
point-to-point ordering, bypass behaviour.

Uses a bare-bones NIC-like endpoint so the NoC is tested without the
coherence stack on top.
"""

from typing import List, Optional, Tuple

import pytest

from repro.noc.config import NocConfig
from repro.noc.mesh import Mesh, zero_load_latency
from repro.noc.packet import Packet, VNet
from repro.noc.router import LOOKAHEAD_DELAY, Lookahead
from repro.noc.routing import LOCAL
from repro.noc.sid_tracker import SidTracker
from repro.noc.vc import CreditTracker
from repro.sim.engine import Engine


class StubEndpoint:
    """Minimal NIC: injects packets, records ejections, returns credits."""

    def __init__(self, node: int, config: NocConfig) -> None:
        self.node = node
        self.config = config
        self.router = None
        self.received: List[Tuple[int, Packet]] = []
        self._inject_credits: Optional[CreditTracker] = None
        self._sid_tracker = SidTracker()
        self._credit_returns = []
        self._pending = []
        self.sent = 0

    def attach(self, router) -> None:
        self.router = router
        depth = max(self.config.uoresp_vc_depth, self.config.data_flits)
        self._inject_credits = CreditTracker(
            self.config.goreq_vcs, self.config.goreq_vc_depth,
            self.config.uoresp_vcs, depth, self.config.reserved_vc)

    # downstream interface -------------------------------------------------
    def deliver_packet(self, packet, inport, vnet, vc_index, arrive_cycle):
        self._pending.append((arrive_cycle, packet, vnet, vc_index))

    def deliver_lookahead(self, la, process_cycle):
        pass

    def queue_credit_release(self, outport, vnet, vc, flits, cycle):
        self._credit_returns.append((cycle, vnet, vc, flits))

    # clocked-ish helpers (driven manually by tests) ------------------------
    def tick(self, cycle: int) -> None:
        for entry in [e for e in self._credit_returns if e[0] <= cycle]:
            self._credit_returns.remove(entry)
            _c, vnet, vc, flits = entry
            self._inject_credits.release(vnet, vc, flits)
            if vnet == VNet.GO_REQ and self._inject_credits.vc_free(vnet, vc):
                self._sid_tracker.clear_vc(vc)
        for entry in [e for e in self._pending if e[0] <= cycle]:
            self._pending.remove(entry)
            _c, packet, vnet, vc_index = entry
            self.received.append((cycle, packet))
            self.router.queue_credit_release(LOCAL, vnet, vc_index,
                                             packet.size_flits, cycle + 1)

    def inject(self, packet: Packet, cycle: int) -> bool:
        vnet = packet.vnet
        if vnet == VNet.GO_REQ and self._sid_tracker.blocks(packet.sid):
            return False
        free = self._inject_credits.free_normal_vcs(vnet)
        if not free:
            return False
        vc = free[0]
        self._inject_credits.consume(vnet, vc, packet.size_flits)
        if vnet == VNet.GO_REQ:
            self._sid_tracker.record(vc, packet.sid)
        packet.inject_cycle = cycle
        if self.config.lookahead_bypass:
            self.router.deliver_lookahead(
                Lookahead(packet=packet, inport=LOCAL),
                process_cycle=cycle + LOOKAHEAD_DELAY)
        self.router.deliver_packet(packet, LOCAL, vnet, vc,
                                   arrive_cycle=cycle + 2)
        self.sent += 1
        return True


class Fabric:
    """A mesh with stub endpoints driven in lockstep."""

    def __init__(self, width=4, height=4, **noc_overrides):
        self.config = NocConfig(width=width, height=height, **noc_overrides)
        self.engine = Engine()
        self.mesh = Mesh(self.config, self.engine)
        self.endpoints = []
        for node in range(self.config.n_nodes):
            ep = StubEndpoint(node, self.config)
            router = self.mesh.attach(node, ep)
            ep.attach(router)
            self.endpoints.append(ep)
        self.engine.add_watcher(self._tick_endpoints)

    def _tick_endpoints(self, cycle):
        for ep in self.endpoints:
            ep.tick(cycle)

    def run(self, cycles):
        self.engine.run(cycles)


def unicast(src, dst, size=1, vnet=VNet.UO_RESP, seq=0):
    return Packet(vnet=vnet, src=src, dst=dst, sid=src, size_flits=size,
                  seq=seq)


def broadcast(src, seq=0):
    return Packet(vnet=VNet.GO_REQ, src=src, dst=None, sid=src,
                  size_flits=1, seq=seq)


class TestUnicast:
    def test_delivery(self):
        fabric = Fabric()
        fabric.endpoints[0].inject(unicast(0, 15), cycle=0)
        fabric.run(60)
        received = fabric.endpoints[15].received
        assert len(received) == 1
        assert received[0][1].src == 0

    def test_zero_load_latency_matches_model(self):
        fabric = Fabric()
        fabric.endpoints[0].inject(unicast(0, 15), cycle=0)
        fabric.run(60)
        cycle, _pkt = fabric.endpoints[15].received[0]
        assert cycle == zero_load_latency(fabric.config, 0, 15)

    def test_latency_scales_with_hops(self):
        fabric = Fabric()
        fabric.endpoints[5].inject(unicast(5, 6), cycle=0)   # 1 hop
        fabric.run(60)
        one_hop = fabric.endpoints[6].received[0][0]
        fabric2 = Fabric()
        fabric2.endpoints[0].inject(unicast(0, 3), cycle=0)  # 3 hops
        fabric2.run(60)
        three_hops = fabric2.endpoints[3].received[0][0]
        assert three_hops == one_hop + 2 * 2   # 2 cycles per extra hop

    def test_no_bypass_is_slower(self):
        fast = Fabric()
        slow = Fabric(lookahead_bypass=False)
        fast.endpoints[0].inject(unicast(0, 15), cycle=0)
        slow.endpoints[0].inject(unicast(0, 15), cycle=0)
        fast.run(80)
        slow.run(80)
        assert slow.endpoints[15].received[0][0] \
            > fast.endpoints[15].received[0][0]

    def test_multiflit_serialization(self):
        fabric = Fabric()
        fabric.endpoints[0].inject(unicast(0, 1, size=3), cycle=0)
        fabric.run(60)
        single = Fabric()
        single.endpoints[0].inject(unicast(0, 1, size=1), cycle=0)
        single.run(60)
        # The 3-flit packet's tail arrives 2 cycles after a 1-flit packet.
        assert fabric.endpoints[1].received[0][0] \
            == single.endpoints[1].received[0][0] + 2


class TestBroadcast:
    def test_all_nodes_receive_exactly_once(self):
        fabric = Fabric()
        fabric.endpoints[5].inject(broadcast(5), cycle=0)
        fabric.run(80)
        for node, ep in enumerate(fabric.endpoints):
            assert len(ep.received) == 1, f"node {node}"
            assert ep.received[0][1].sid == 5

    def test_source_receives_own_broadcast(self):
        fabric = Fabric()
        fabric.endpoints[9].inject(broadcast(9), cycle=0)
        fabric.run(80)
        assert len(fabric.endpoints[9].received) == 1

    def test_concurrent_broadcasts_all_delivered(self):
        fabric = Fabric()
        for node in range(16):
            fabric.endpoints[node].inject(broadcast(node, seq=0), cycle=0)
        fabric.run(400)
        for ep in fabric.endpoints:
            assert len(ep.received) == 16
            assert sorted(p.sid for _c, p in ep.received) == list(range(16))

    def test_sid_invariant_under_load(self):
        fabric = Fabric()
        checks = []
        fabric.engine.add_watcher(
            lambda _c: checks.append(fabric.mesh.check_sid_invariant()))
        for node in range(16):
            fabric.endpoints[node].inject(broadcast(node), cycle=0)
        fabric.run(200)
        assert all(checks)

    def test_point_to_point_order_same_source(self):
        # Two broadcasts from one source must arrive in order everywhere.
        fabric = Fabric()
        first = broadcast(3, seq=0)
        second = broadcast(3, seq=1)
        fabric.endpoints[3].inject(first, cycle=0)

        injected = {"done": False}

        def try_second(cycle):
            if not injected["done"]:
                injected["done"] = fabric.endpoints[3].inject(second, cycle)

        fabric.engine.add_watcher(try_second)
        fabric.run(300)
        for node, ep in enumerate(fabric.endpoints):
            seqs = [p.seq for _c, p in ep.received if p.sid == 3]
            assert seqs == [0, 1], f"node {node} saw {seqs}"

    def test_quiescence_after_drain(self):
        fabric = Fabric()
        fabric.endpoints[0].inject(broadcast(0), cycle=0)
        fabric.run(100)
        assert fabric.mesh.quiescent()


class TestMeshMisc:
    def test_double_attach_rejected(self):
        fabric = Fabric(width=2, height=2)
        with pytest.raises(ValueError):
            fabric.mesh.attach(0, StubEndpoint(0, fabric.config))

    def test_occupancy_zero_at_rest(self):
        fabric = Fabric()
        fabric.run(10)
        assert fabric.mesh.total_occupancy() == 0


class TestStaleBypassGrant:
    """The stale-grant branch of _process_arrivals: a pre-allocation whose
    packet misses its arrival slot must be rolled back (credits returned,
    SID entries cleared), counted, and the packet buffered normally."""

    def _plant_stale_grant(self, fabric, router, packet, outport,
                           arrival_cycle):
        from repro.noc.router import _BypassGrant
        vnet = packet.vnet
        vc = router._select_downstream_vc(outport, packet)
        assert vc is not None
        router.out_credits[outport].consume(vnet, vc, packet.size_flits)
        if vnet == VNet.GO_REQ:
            router.sid_trackers[outport].record(vc, packet.sid)
        router._refresh_avail(outport)
        router._bypass_grants[packet.pid] = _BypassGrant(
            arrival_cycle=arrival_cycle, outports=frozenset({outport}),
            granted_vcs={outport: vc}, inport=LOCAL)
        return vc

    def test_late_arrival_rolls_back_and_buffers(self):
        from repro.noc.routing import xy_route
        fabric = Fabric()
        router = fabric.mesh.routers[5]
        packet = unicast(5, 7)
        outport = xy_route(5, 7, fabric.config.width)
        # Crossbar pre-allocated for an arrival at cycle 4 ...
        vc = self._plant_stale_grant(fabric, router, packet, outport,
                                     arrival_cycle=4)
        assert not router.out_credits[outport].vc_free(packet.vnet, vc)
        # ... but the packet shows up at cycle 6 (upstream credits
        # consumed as a real injection would, so the release on forward
        # balances).
        fabric.endpoints[5]._inject_credits.consume(packet.vnet, 0,
                                                    packet.size_flits)
        router.deliver_packet(packet, LOCAL, packet.vnet, 0, arrive_cycle=6)
        fabric.run(8)
        assert fabric.mesh.stats.counter("router.grants.stale") == 1
        assert not router._bypass_grants          # grant consumed
        # The pre-allocated credits came back before the normal-path
        # forward re-consumed them; the packet took the buffered path.
        assert fabric.mesh.stats.counter("noc.router.buffered") >= 1
        assert fabric.mesh.stats.counter("noc.router.bypassed") == 0
        fabric.run(60)
        received = fabric.endpoints[7].received
        assert [p.src for _c, p in received] == [5]
        assert fabric.mesh.total_occupancy() == 0

    def test_goreq_rollback_clears_sid_tracker(self):
        from repro.noc.routing import xy_route
        fabric = Fabric()
        router = fabric.mesh.routers[5]
        packet = Packet(vnet=VNet.GO_REQ, src=5, dst=6, sid=5, size_flits=1,
                        seq=0)
        outport = xy_route(5, 6, fabric.config.width)
        vc = self._plant_stale_grant(fabric, router, packet, outport,
                                     arrival_cycle=4)
        assert router.sid_trackers[outport].blocks(5)
        fabric.endpoints[5]._inject_credits.consume(packet.vnet, 0,
                                                    packet.size_flits)
        fabric.endpoints[5]._sid_tracker.record(0, packet.sid)
        router.deliver_packet(packet, LOCAL, packet.vnet, 0, arrive_cycle=6)
        fabric.run(8)
        assert fabric.mesh.stats.counter("router.grants.stale") == 1
        # Rollback must also retract the SID reservation, or source 5
        # would deadlock against its own stale grant.
        sids_at_6 = [s for _vc, s in
                     router.sid_trackers[outport].live_entries().items()]
        assert sids_at_6.count(5) <= 1    # only the re-forwarded copy
        fabric.run(60)
        assert fabric.mesh.total_occupancy() == 0
