"""Unit tests for XY routing and the XY broadcast tree."""

import pytest

from repro.noc.routing import (EAST, LOCAL, NORTH, SOUTH, WEST,
                               broadcast_outports, coords, hop_count,
                               neighbor, node_at, opposite, xy_route)


class TestCoordinates:
    def test_coords_roundtrip(self):
        for node in range(36):
            x, y = coords(node, 6)
            assert node_at(x, y, 6) == node

    def test_neighbor_directions(self):
        # Node 7 in a 6x6 mesh is at (1, 1).
        assert neighbor(7, NORTH, 6, 6) == 13
        assert neighbor(7, SOUTH, 6, 6) == 1
        assert neighbor(7, EAST, 6, 6) == 8
        assert neighbor(7, WEST, 6, 6) == 6

    def test_neighbor_off_mesh_raises(self):
        with pytest.raises(ValueError):
            neighbor(0, SOUTH, 6, 6)
        with pytest.raises(ValueError):
            neighbor(0, WEST, 6, 6)
        with pytest.raises(ValueError):
            neighbor(35, NORTH, 6, 6)

    def test_opposite(self):
        assert opposite(NORTH) == SOUTH
        assert opposite(EAST) == WEST
        assert opposite(LOCAL) == LOCAL


class TestXYRouting:
    def test_x_before_y(self):
        # From (0,0) to (3,3): must go east first.
        assert xy_route(0, node_at(3, 3, 6), 6) == EAST

    def test_y_when_x_aligned(self):
        assert xy_route(node_at(3, 0, 6), node_at(3, 3, 6), 6) == NORTH

    def test_local_at_destination(self):
        assert xy_route(14, 14, 6) == LOCAL

    def test_route_always_reaches(self):
        # Walk the XY path from every src to every dst in a 4x4 mesh.
        for src in range(16):
            for dst in range(16):
                current, hops = src, 0
                while True:
                    port = xy_route(current, dst, 4)
                    if port == LOCAL:
                        break
                    current = neighbor(current, port, 4, 4)
                    hops += 1
                    assert hops <= 8, "XY route must not loop"
                assert current == dst
                assert hops == hop_count(src, dst, 4)


class TestBroadcastTree:
    @pytest.mark.parametrize("width,height", [(2, 2), (4, 4), (6, 6), (3, 5)])
    def test_every_node_receives_exactly_once(self, width, height):
        for src in range(width * height):
            deliveries = {}
            frontier = [(src, LOCAL)]
            steps = 0
            while frontier:
                steps += 1
                assert steps < 10_000
                nxt = []
                for node, inport in frontier:
                    ports = broadcast_outports(node, inport, width, height)
                    for port in ports:
                        if port == LOCAL:
                            deliveries[node] = deliveries.get(node, 0) + 1
                        else:
                            nxt.append((neighbor(node, port, width, height),
                                        opposite(port)))
                frontier = nxt
            assert deliveries == {n: 1 for n in range(width * height)}

    def test_source_forks_all_directions(self):
        # Center of a 3x3 mesh: all four directions plus local.
        ports = broadcast_outports(4, LOCAL, 3, 3)
        assert ports == frozenset({NORTH, EAST, SOUTH, WEST, LOCAL})

    def test_corner_source(self):
        ports = broadcast_outports(0, LOCAL, 3, 3)
        assert ports == frozenset({NORTH, EAST, LOCAL})

    def test_y_traveling_flit_does_not_fork_x(self):
        # Arriving from the south (traveling north): only N + local.
        ports = broadcast_outports(4, SOUTH, 3, 3)
        assert ports == frozenset({NORTH, LOCAL})

    def test_invalid_inport_raises(self):
        with pytest.raises(ValueError):
            broadcast_outports(0, 9, 3, 3)
