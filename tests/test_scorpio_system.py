"""End-to-end tests of the SCORPIO system: coherence scenarios, the
global-order agreement property, and invariant checks."""

import pytest

from repro.coherence.mosi import State
from repro.cpu.trace import Trace, TraceOp
from repro.noc.config import NocConfig
from repro.systems.scorpio import ScorpioSystem
from repro.workloads.synthetic import uniform_random_trace

LINE = 32
ADDR = 0x4000_0000


def small_system(traces=None, width=3, height=3, **kwargs):
    noc = NocConfig(width=width, height=height)
    if traces is not None:
        traces = list(traces) + [Trace([])] * (width * height - len(traces))
    return ScorpioSystem(traces=traces, noc=noc, **kwargs)


def run_done(system, max_cycles=20_000):
    system.run_until_done(max_cycles)
    assert system.all_cores_finished(), "cores did not finish"
    return system.engine.cycle


class TestReadSharing:
    def test_two_readers_end_shared(self):
        system = small_system([
            Trace([TraceOp("R", ADDR, 1)]),
            Trace([TraceOp("R", ADDR, 1)]),
        ])
        run_done(system)
        assert system.l2s[0].state_of(ADDR) is State.S
        assert system.l2s[1].state_of(ADDR) is State.S

    def test_read_after_write_gets_dirty_data_on_chip(self):
        # Writer dirties the line; a later reader must be served by the
        # writer's cache (M -> O), not memory.
        system = small_system([
            Trace([TraceOp("W", ADDR, 1)]),
            Trace([TraceOp("R", ADDR, 400)]),
        ])
        run_done(system)
        assert system.l2s[0].state_of(ADDR) is State.O
        assert system.l2s[1].state_of(ADDR) is State.S
        assert system.stats.counter("l2.data_forwards") >= 1


class TestWriteInvalidation:
    def test_write_invalidates_sharers(self):
        system = small_system([
            Trace([TraceOp("R", ADDR, 1)]),
            Trace([TraceOp("R", ADDR, 1), TraceOp("W", ADDR, 300)]),
        ])
        run_done(system)
        assert system.l2s[0].state_of(ADDR) is State.I
        assert system.l2s[1].state_of(ADDR) is State.M

    def test_migratory_ownership(self):
        # W0 -> W1 -> W2: ownership must migrate, single owner at end.
        system = small_system([
            Trace([TraceOp("W", ADDR, 1)]),
            Trace([TraceOp("W", ADDR, 500)]),
            Trace([TraceOp("W", ADDR, 1000)]),
        ])
        run_done(system)
        owners = [l2.node for l2 in system.l2s
                  if l2.state_of(ADDR).is_owner]
        assert owners == [2]
        assert system.l2s[0].state_of(ADDR) is State.I
        assert system.l2s[1].state_of(ADDR) is State.I

    def test_concurrent_writers_serialize(self):
        # All nine cores write the same line at once: exactly one owner
        # at the end, everyone finished.
        system = small_system(
            [Trace([TraceOp("W", ADDR, 1)]) for _ in range(9)])
        run_done(system)
        owners = [l2.node for l2 in system.l2s
                  if l2.state_of(ADDR).is_owner]
        assert len(owners) == 1
        assert system.single_owner_invariant()


class TestGlobalOrder:
    def _delivered_orders(self, system):
        """Install recorders on every NIC; returns the per-node logs."""
        logs = {node: [] for node in range(system.n_nodes)}
        for node, nic in enumerate(system.nics):
            nic.add_request_listener(
                (lambda n: (lambda payload, sid, cycle, arrival:
                            logs[n].append((sid, payload.req_id))))(node))
        return logs

    def test_all_nodes_see_same_order(self):
        noc = NocConfig(width=3, height=3)
        traces = [uniform_random_trace(c, 12, 16, write_fraction=0.5,
                                       think=4, seed=7) for c in range(9)]
        system = ScorpioSystem(traces=traces, noc=noc)
        logs = self._delivered_orders(system)
        system.run_until_done(60_000)
        assert system.all_cores_finished()
        reference = logs[0]
        assert len(reference) > 0
        for node in range(1, 9):
            assert logs[node] == reference, f"node {node} order diverged"

    def test_order_consistent_under_heavy_conflict(self):
        noc = NocConfig(width=3, height=3)
        # Everyone hammers four lines.
        traces = [uniform_random_trace(c, 15, 4, write_fraction=0.6,
                                       think=2, seed=13) for c in range(9)]
        system = ScorpioSystem(traces=traces, noc=noc)
        logs = self._delivered_orders(system)
        system.run_until_done(120_000)
        assert system.all_cores_finished()
        for node in range(1, 9):
            assert logs[node] == logs[0]
        assert system.single_owner_invariant()

    def test_per_source_order_preserved(self):
        noc = NocConfig(width=3, height=3)
        traces = [uniform_random_trace(c, 10, 8, write_fraction=0.5,
                                       think=3, seed=3) for c in range(9)]
        system = ScorpioSystem(traces=traces, noc=noc)
        logs = self._delivered_orders(system)
        system.run_until_done(60_000)
        # Within one source, req_ids must appear in issue order.
        by_source = {}
        for sid, req_id in logs[0]:
            by_source.setdefault(sid, []).append(req_id)
        for sid, ids in by_source.items():
            assert ids == sorted(ids), f"source {sid} reordered"


class TestWritebacks:
    def test_capacity_eviction_writes_back(self):
        # Tiny L2 (4 lines) forces dirty evictions.
        from repro.coherence.l2_controller import CacheConfig
        cache = CacheConfig(l2_size=128, l2_ways=2, line_size=32,
                            use_region_tracker=False)
        ops = [TraceOp("W", ADDR + i * LINE, 20) for i in range(8)]
        system = small_system([Trace(ops)], cache=cache)
        run_done(system, 60_000)
        assert system.stats.counter("l2.writebacks.completed") >= 1
        assert system.stats.counter("mc.writebacks_received") \
            == system.stats.counter("l2.writebacks.completed")

    def test_read_after_eviction_served_by_memory(self):
        from repro.coherence.l2_controller import CacheConfig
        cache = CacheConfig(l2_size=128, l2_ways=2, line_size=32,
                            use_region_tracker=False)
        ops = [TraceOp("W", ADDR + i * LINE, 20) for i in range(8)]
        ops.append(TraceOp("R", ADDR, 200))   # long evicted by now
        system = small_system([Trace(ops)], cache=cache)
        run_done(system, 60_000)
        assert system.stats.counter("mc.dram_reads") >= 2


class TestQuiescence:
    def test_system_quiesces_after_work(self):
        system = small_system([
            Trace([TraceOp("W", ADDR, 1), TraceOp("R", ADDR + LINE, 10)]),
            Trace([TraceOp("R", ADDR, 5)]),
        ])
        run_done(system)
        system.run(500)   # drain
        assert system.quiesced()

    def test_empty_traces_finish_immediately(self):
        system = small_system([Trace([]) for _ in range(9)])
        cycles = system.run_until_done(1000)
        assert cycles < 10


class TestConfigurationErrors:
    def test_wrong_trace_count_rejected(self):
        with pytest.raises(ValueError):
            ScorpioSystem(traces=[Trace([])],
                          noc=NocConfig(width=3, height=3))
