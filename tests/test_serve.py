"""End-to-end tests for the ``repro serve`` sweep service.

The load-bearing contract: an experiment document submitted over HTTP
produces a results envelope **byte-identical** to ``repro run-file``
on the same document against the same cache state.  Around it: warm
re-submission does zero simulation work (proven at the scheduler),
identical points coalesce, a SIGKILLed worker loses no points, spool
drops execute exactly once, and the failure paths are loud."""

import asyncio
import io
import json
import time

import pytest

from repro.api import envelope_bytes, run_experiment
from repro.api.client import AsyncServeClient, ServeClient, ServeError
from repro.api.document import experiment_from_dict
from repro.serve import serve

KNOBS = dict(ops_per_core=8, workload_scale=0.02, think_scale=10.0)


@pytest.fixture(autouse=True)
def isolated_execution_context(monkeypatch):
    import repro.experiments.context as context
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    monkeypatch.setattr(context, "_context", context.ExecutionContext())


def tiny_document(name="serve-tiny", seeds=(0, 1), protocol="scorpio"):
    return {
        "schema": 1,
        "name": name,
        "runs": [dict(benchmark="fft", protocol=protocol, seed=seed,
                      **KNOBS) for seed in seeds],
    }


def local_envelope(document, cache_dir, jobs=2):
    """What ``repro run-file --cache-dir <fresh> --output`` writes."""
    collected = run_experiment(experiment_from_dict(document),
                               jobs=jobs, cache=str(cache_dir))
    return envelope_bytes(collected.payload())


def without_cache_key(envelope):
    payload = json.loads(envelope)
    payload.pop("cache", None)
    return payload


def run_cli(*argv):
    from repro.cli import main
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


@pytest.fixture
def server(tmp_path):
    instance = serve(tmp_path / "cache", port=0, workers=2).start()
    yield instance
    instance.stop()


@pytest.fixture
def client(server):
    return ServeClient(server.url)


class TestFrontend:
    def test_health(self, server, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["server"].startswith("repro-serve/")
        assert health["cache"] == server.service.backend.location

    def test_unknown_paths_are_404(self, client):
        with pytest.raises(ServeError, match="HTTP 404"):
            client._request("/nope")
        with pytest.raises(ServeError, match="HTTP 404"):
            client.job("job-9999")

    def test_empty_and_invalid_bodies_are_400(self, client):
        with pytest.raises(ServeError, match="HTTP 400"):
            client._request("/v1/jobs", method="POST", data=b"")
        with pytest.raises(ServeError, match="HTTP 400"):
            client._request("/v1/jobs", method="POST", data=b"not json")

    def test_invalid_document_is_422_with_detail(self, client):
        bad = {"schema": 1, "name": "bad",
               "runs": [{"benchmark": "fft", "protocol": "no-such"}]}
        with pytest.raises(ServeError, match="HTTP 422.*protocol"):
            client.submit_document(bad)


class TestByteIdentity:
    def test_http_envelope_identical_to_run_file(self, tmp_path, client):
        """The tentpole contract: same document, same (fresh) cache
        state -> the HTTP result is the run-file envelope, byte for
        byte, including the cache stats key."""
        document = tiny_document()
        outcome = client.run(document, timeout=120.0)
        expected = local_envelope(document, tmp_path / "local-cache")
        assert outcome.envelope == expected
        assert outcome.payload["cache"] == {"hits": 0, "misses": 2}

    def test_warm_resubmit_does_zero_simulation_work(self, server, client):
        document = tiny_document()
        cold = client.run(document, timeout=120.0)
        spawned_before = server.service.scheduler.spawned
        warm = client.run(document, timeout=120.0)
        # Scheduler-level proof: no worker process was started.
        assert server.service.scheduler.spawned == spawned_before
        assert warm.summary["cache"] == {"hits": 2, "misses": 0}
        assert warm.payload["cache"] == {"hits": 2, "misses": 0}
        # Identical but for the cache stats (hits instead of misses).
        assert without_cache_key(warm.envelope) \
            == without_cache_key(cold.envelope)

    def test_duplicate_points_coalesce_into_one_simulation(self, server,
                                                           client):
        document = tiny_document(seeds=(0, 0))
        spawned_before = server.service.scheduler.spawned
        outcome = client.run(document, timeout=120.0)
        # run_sweep accounting: each requested point is its own miss...
        assert outcome.summary["cache"] == {"hits": 0, "misses": 2}
        # ...but the fingerprint simulated exactly once.
        assert server.service.scheduler.spawned == spawned_before + 1
        results = outcome.payload["results"]
        assert len(results) == 2 and results[0] == results[1]


class TestJobLifecycle:
    def test_events_stream_replays_and_follows(self, client):
        events = []
        outcome = client.run(tiny_document(seeds=(0,)), timeout=120.0,
                             on_event=events.append)
        kinds = [event["event"] for event in events]
        assert kinds[0] == "queued"
        assert kinds.count("point") == 1
        assert kinds[-1] == "done"
        assert all(event["job"] == outcome.summary["job"]
                   for event in events)

    def test_jobs_listing(self, client):
        outcome = client.run(tiny_document(seeds=(0,)), timeout=120.0)
        jobs = client.jobs()
        assert [job["job"] for job in jobs] == [outcome.summary["job"]]
        assert jobs[0]["state"] == "done"
        assert client.job(outcome.summary["job"])["state"] == "done"

    def test_failed_job_is_loud_and_result_is_410(self, tmp_path,
                                                  monkeypatch):
        import repro.serve.scheduler as scheduler_mod

        def doomed_worker(item):
            raise RuntimeError("deliberate point failure")

        monkeypatch.setattr(scheduler_mod, "_pool_worker", doomed_worker)
        server = serve(tmp_path / "cache", port=0, workers=1,
                       retries=0).start()
        try:
            client = ServeClient(server.url)
            with pytest.raises(ServeError,
                               match="deliberate point failure"):
                client.run(tiny_document(seeds=(0,)), timeout=120.0)
            job_id = client.jobs()[0]["job"]
            summary = client.job(job_id)
            assert summary["state"] == "failed"
            assert len(summary["failures"]) == 1
            with pytest.raises(ServeError, match="HTTP 410"):
                client.result_bytes(job_id)
        finally:
            server.stop()


class TestWorkerDeath:
    def test_sigkilled_worker_loses_no_points(self, tmp_path, monkeypatch):
        """SIGKILL a worker mid-job: the job still completes via retry
        and the envelope is byte-identical to an undisturbed run."""
        import os
        import signal

        import repro.serve.scheduler as scheduler_mod

        real_worker = scheduler_mod._pool_worker
        flag = tmp_path / "killed-once"

        def kill_once_worker(item):
            if not flag.exists():
                flag.touch()
                os.kill(os.getpid(), signal.SIGKILL)
            return real_worker(item)

        monkeypatch.setattr(scheduler_mod, "_pool_worker",
                            kill_once_worker)
        server = serve(tmp_path / "cache", port=0, workers=1,
                       retries=1).start()
        try:
            document = tiny_document()
            outcome = ServeClient(server.url).run(document, timeout=120.0)
            assert flag.exists()           # the kill really happened
            assert outcome.summary["retries"] >= 1
            assert outcome.envelope \
                == local_envelope(document, tmp_path / "undisturbed")
        finally:
            server.stop()


class TestSpool:
    def test_dropped_document_executes_once_and_writes_result(
            self, tmp_path):
        spool = tmp_path / "spool"
        server = serve(tmp_path / "cache", port=0, workers=2,
                       spool=spool, spool_interval=0.05).start()
        try:
            document = tiny_document(name="spooled")
            (spool / "drop.json").write_text(json.dumps(document),
                                             encoding="utf-8")
            result = spool / "drop.result.json"
            deadline = time.monotonic() + 120.0
            while not result.exists():
                assert time.monotonic() < deadline, "spool result never appeared"
                time.sleep(0.05)
            assert result.read_bytes() \
                == local_envelope(document, tmp_path / "local-cache")
            # The drop was claimed and consumed; no claim litter left.
            leftovers = sorted(p.name for p in spool.iterdir())
            assert leftovers == ["drop.result.json"]
        finally:
            server.stop()

    def test_bad_document_leaves_error_file(self, tmp_path):
        spool = tmp_path / "spool"
        server = serve(tmp_path / "cache", port=0, workers=1,
                       spool=spool, spool_interval=0.05).start()
        try:
            (spool / "broken.json").write_text('{"schema": 99}',
                                               encoding="utf-8")
            error = spool / "broken.error.txt"
            deadline = time.monotonic() + 30.0
            while not error.exists():
                assert time.monotonic() < deadline, "spool error never appeared"
                time.sleep(0.05)
            assert "schema" in error.read_text(encoding="utf-8")
        finally:
            server.stop()


class TestAsyncClient:
    def test_async_run_matches_sync(self, server, client):
        document = tiny_document(seeds=(0,))
        sync_outcome = client.run(document, timeout=120.0)

        async def go():
            async_client = AsyncServeClient(server.url)
            assert (await async_client.health())["status"] == "ok"
            outcome = await async_client.run(document, timeout=120.0)
            events = []
            async for event in async_client.events(
                    outcome.summary["job"]):
                events.append(event)
            return outcome, events

        outcome, events = asyncio.run(go())
        assert outcome.summary["cache"] == {"hits": 1, "misses": 0}
        assert without_cache_key(outcome.envelope) \
            == without_cache_key(sync_outcome.envelope)
        assert [event["event"] for event in events][-1] == "done"


class TestCli:
    def test_submit_wait_and_jobs(self, tmp_path, server):
        document = tiny_document(seeds=(0,))
        doc_path = tmp_path / "doc.json"
        doc_path.write_text(json.dumps(document), encoding="utf-8")
        out_path = tmp_path / "envelope.json"

        code, text = run_cli("submit", str(doc_path), "--url", server.url,
                             "--wait", "--output", str(out_path))
        assert code == 0
        assert "done: 1 points" in text
        assert out_path.read_bytes() \
            == local_envelope(document, tmp_path / "local-cache")

        code, text = run_cli("submit", str(doc_path), "--url", server.url)
        assert code == 0
        assert "job-0002" in text

        code, text = run_cli("jobs", "--url", server.url)
        assert code == 0
        assert "job-0001" in text and "done" in text

    def test_submit_unreachable_service_fails_loud(self, tmp_path):
        doc_path = tmp_path / "doc.json"
        doc_path.write_text(json.dumps(tiny_document(seeds=(0,))),
                            encoding="utf-8")
        code, text = run_cli("submit", str(doc_path),
                             "--url", "http://127.0.0.1:1", "--wait")
        assert code == 1
        assert "error:" in text
