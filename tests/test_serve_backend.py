"""Cache backend layer: local/remote backends behind one protocol.

Covers the backend split (`as_backend` coercions, `ResultCache`
accounting over either backend), the satellite-2 stress proof that
concurrent cross-process ``put`` of the same fingerprint is
last-writer-wins and never torn, and the remote HTTP backend against a
live ``repro serve`` frontend — including the loud-failure contract
when the frontend is unreachable."""

import json
import multiprocessing
import os
from pathlib import Path

import pytest

from repro.core.config import ChipConfig
from repro.experiments import (LocalDirBackend, ResultCache, RunSpec,
                               as_backend, run_sweep)
from repro.serve import CacheUnavailableError, RemoteCacheBackend, serve

KNOBS = dict(ops_per_core=8, workload_scale=0.02, think_scale=10.0)


@pytest.fixture(autouse=True)
def isolated_execution_context(monkeypatch):
    import repro.experiments.context as context
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    monkeypatch.setattr(context, "_context", context.ExecutionContext())


def tiny_spec(**overrides):
    params = dict(benchmark="fft", protocol="scorpio",
                  config=ChipConfig.variant(3, 3), seed=0, **KNOBS)
    params.update(overrides)
    return RunSpec(**params)


class TestAsBackend:
    def test_path_and_str_become_local(self, tmp_path):
        for store in (tmp_path, str(tmp_path)):
            backend = as_backend(store)
            assert isinstance(backend, LocalDirBackend)
            assert backend.directory == tmp_path

    def test_http_url_becomes_remote(self):
        backend = as_backend("http://somewhere:1234/")
        assert isinstance(backend, RemoteCacheBackend)
        assert backend.base_url == "http://somewhere:1234"

    def test_backend_instances_pass_through(self, tmp_path):
        backend = LocalDirBackend(tmp_path)
        assert as_backend(backend) is backend


class TestResultCacheAccounting:
    def test_contains_is_never_counted(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("ab" * 32, {"x": 1})
        assert cache.contains("ab" * 32)
        assert not cache.contains("cd" * 32)
        assert (cache.hits, cache.misses) == (0, 0)
        assert cache.get("ab" * 32) == {"x": 1}
        assert cache.get("cd" * 32) is None
        assert (cache.hits, cache.misses) == (1, 1)

    def test_stats_includes_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("ab" * 32, {"x": 1})
        assert cache.stats() == {"hits": 0, "misses": 0, "entries": 1}


# ----------------------------------------------------------------------
# Satellite 2: concurrent same-fingerprint put is last-writer-wins,
# never torn.
# ----------------------------------------------------------------------

FP = "f0" * 32
WRITERS = 4
ROUNDS = 60
# Payloads are large enough that a non-atomic write would be observably
# torn (json.load of a partial file fails -> get() returns None, and a
# mixed file would fail the self-consistency check below).
FILLER = "x" * 4096


def _writer_main(directory, writer_id, start, done):
    backend = LocalDirBackend(directory)
    payload = {"writer": writer_id, "filler": FILLER,
               "check": f"writer-{writer_id}"}
    start.wait()
    for _ in range(ROUNDS):
        backend.put(FP, payload)
    done.put(writer_id)


class TestConcurrentPutStress:
    def test_cross_process_same_fingerprint_put_never_tears(self, tmp_path):
        ctx = multiprocessing.get_context("fork")
        start = ctx.Event()
        done = ctx.Queue()
        procs = [ctx.Process(target=_writer_main,
                             args=(str(tmp_path), w, start, done))
                 for w in range(WRITERS)]
        for proc in procs:
            proc.start()
        backend = LocalDirBackend(tmp_path)
        start.set()
        observed = set()
        finished = 0
        while finished < WRITERS:
            payload = backend.get(FP)
            if payload is not None:
                # A torn read either fails JSON parsing (get() -> None,
                # caught above as an impossible "missing after first
                # put" only transiently) or mixes two writers' bytes —
                # the self-consistency check catches the latter.
                assert payload["filler"] == FILLER
                assert payload["check"] == f"writer-{payload['writer']}"
                observed.add(payload["writer"])
            while not done.empty():
                done.get()
                finished += 1
        for proc in procs:
            proc.join(timeout=10.0)
            assert proc.exitcode == 0
        # Last writer wins: the final entry is one writer's complete
        # payload, and no .tmp litter survives.
        final = backend.get(FP)
        assert final is not None
        assert final["check"] == f"writer-{final['writer']}"
        entry_dir = tmp_path / FP[:2]
        assert sorted(p.name for p in entry_dir.iterdir()) \
            == [f"{FP}.json"]
        assert observed  # the reader really raced the writers


# ----------------------------------------------------------------------
# Remote backend against a live frontend
# ----------------------------------------------------------------------

@pytest.fixture
def frontend(tmp_path):
    server = serve(tmp_path / "cache", port=0, workers=1).start()
    yield server
    server.stop()


class TestRemoteCacheBackend:
    def test_round_trip_contains_entries(self, frontend):
        remote = RemoteCacheBackend(frontend.url)
        fp = "ab" * 32
        assert remote.get(fp) is None
        assert not remote.contains(fp)
        assert remote.entries() == 0
        remote.put(fp, {"answer": 42})
        assert remote.contains(fp)
        assert remote.get(fp) == {"answer": 42}
        assert remote.entries() == 1
        # The entry landed in the frontend's local store, byte-for-byte
        # what LocalDirBackend would have written.
        local = frontend.service.backend
        assert local.get(fp) == {"answer": 42}

    def test_unreachable_frontend_is_loud(self):
        remote = RemoteCacheBackend("http://127.0.0.1:1", timeout=0.5)
        with pytest.raises(CacheUnavailableError):
            remote.get("ab" * 32)
        with pytest.raises(CacheUnavailableError):
            remote.put("ab" * 32, {"x": 1})
        with pytest.raises(CacheUnavailableError):
            remote.contains("ab" * 32)

    def test_run_sweep_through_remote_cache(self, frontend):
        """A worker host using the frontend URL as its cache: the first
        sweep populates the shared store, the second is all hits."""
        specs = [tiny_spec(seed=s) for s in (0, 1)]
        cold_cache = ResultCache(as_backend(frontend.url))
        cold = run_sweep(specs, jobs=1, cache=cold_cache)
        assert (cold_cache.hits, cold_cache.misses) == (0, 2)
        warm_cache = ResultCache(as_backend(frontend.url))
        warm = run_sweep(specs, jobs=1, cache=warm_cache)
        assert (warm_cache.hits, warm_cache.misses) == (2, 0)
        assert all(r.cached for r in warm)
        assert [r.payload() for r in warm] == [r.payload() for r in cold]
