"""Migratory / producer-consumer pattern tests (repro.workloads.patterns)."""

import pytest

from repro.coherence.mosi import State
from repro.cpu.trace import Trace
from repro.noc.config import NocConfig
from repro.systems.directory import DirectorySystem
from repro.systems.scorpio import ScorpioSystem
from repro.workloads.patterns import (BUFFER_BASE, MIGRATORY_BASE,
                                      migratory_traces,
                                      producer_consumer_traces)

LINE = 32


def pad(traces, n):
    return list(traces) + [Trace([])] * (n - len(traces))


def run_scorpio(traces, max_cycles=400_000):
    system = ScorpioSystem(traces=pad(traces, 9),
                           noc=NocConfig(width=3, height=3))
    system.run_until_done(max_cycles)
    assert system.all_cores_finished()
    return system


class TestMigratoryGenerator:
    def test_shape(self):
        traces = migratory_traces(4, rounds=2, blocks=1, lines_per_block=2)
        assert len(traces) == 4
        for trace in traces:
            # Per round per block: R,R then W,W.
            kinds = [op.op for op in trace]
            assert kinds == ["R", "R", "W", "W"] * 2

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            migratory_traces(0)
        with pytest.raises(ValueError):
            migratory_traces(4, rounds=0)

    def test_ownership_migrates(self):
        traces = migratory_traces(4, rounds=2, blocks=1,
                                  lines_per_block=1)
        system = run_scorpio(traces)
        # Everyone wrote the block at least once: the line's version
        # counts every write, and data moved cache-to-cache.
        version = max(l2.line_version(MIGRATORY_BASE)
                      for l2 in system.l2s)
        assert version == 4 * 2   # 4 cores x 2 rounds x 1 write
        assert system.stats.counter("l2.data_forwards") >= 4

    def test_last_writer_owns(self):
        traces = migratory_traces(3, rounds=1, blocks=1,
                                  lines_per_block=1)
        system = run_scorpio(traces)
        owners = [l2.node for l2 in system.l2s
                  if l2.state_of(MIGRATORY_BASE).is_owner]
        assert owners == [2]   # the final core in the rotation


class TestProducerConsumerGenerator:
    def test_shape(self):
        traces = producer_consumer_traces(3, rounds=2, buffer_lines=2)
        assert len(traces) == 4
        producer = traces[0]
        assert [op.op for op in producer].count("W") == 4

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            producer_consumer_traces(0)
        with pytest.raises(ValueError):
            producer_consumer_traces(2, buffer_lines=0)

    def test_consumers_end_shared(self):
        traces = producer_consumer_traces(3, rounds=2, buffer_lines=2)
        system = run_scorpio(traces)
        # After the final consumption round every consumer holds S
        # copies and the producer retains ownership (M or O_D).
        for consumer in range(1, 4):
            state = system.l2s[consumer].state_of(BUFFER_BASE)
            assert state is State.S, f"consumer {consumer}: {state}"
        assert system.l2s[0].state_of(BUFFER_BASE).is_owner

    def test_dirty_sharing_stays_on_chip(self):
        # The O_D state keeps producer data on chip: consumers are fed
        # by the producer's cache, not by DRAM writebacks.
        traces = producer_consumer_traces(3, rounds=2, buffer_lines=2)
        system = run_scorpio(traces)
        forwards = system.stats.counter("l2.data_forwards")
        assert forwards >= 2 * 2   # every round re-shares the buffer
        # No eviction happened, so nothing was written back to memory.
        assert system.stats.counter("mc.writebacks_received") == 0

    def test_migratory_beats_directory_on_handoff(self):
        traces = migratory_traces(9, rounds=2, blocks=1,
                                  lines_per_block=2)
        scorpio = run_scorpio(list(traces))
        directory = DirectorySystem(scheme="LPD", traces=pad(traces, 9),
                                    noc=NocConfig(width=3, height=3))
        directory.run_until_done(400_000)
        assert directory.all_cores_finished()
        assert (scorpio.stats.mean("l2.miss_latency.cache")
                < directory.stats.mean("l2.miss_latency.cache"))
