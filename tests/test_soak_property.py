"""Property-based soak tests: random tiny workloads on random small
meshes must always complete, agree on the global order, and preserve the
single-owner invariant.  This is the broadest liveness/safety net in the
suite — any credit leak, deadlock or ordering bug tends to surface here
first."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.trace import Trace, TraceOp
from repro.noc.config import NocConfig
from repro.systems.directory import DirectorySystem
from repro.systems.scorpio import ScorpioSystem

LINE = 32
BASE = 0x4000_0000


def traces_strategy(n_cores, max_ops=6, max_lines=5):
    op = st.tuples(st.sampled_from("RW"), st.integers(0, max_lines - 1),
                   st.integers(1, 30))
    thread = st.lists(op, max_size=max_ops)
    return st.lists(thread, min_size=n_cores, max_size=n_cores)


def build_traces(raw):
    return [Trace([TraceOp(op=o, addr=BASE + line * LINE, think=think)
                   for o, line, think in thread])
            for thread in raw]


class TestScorpioSoak:
    @settings(max_examples=12, deadline=None)
    @given(raw=traces_strategy(9))
    def test_random_workloads_complete_and_agree(self, raw):
        system = ScorpioSystem(traces=build_traces(raw),
                               noc=NocConfig(width=3, height=3))
        logs = {n: [] for n in range(9)}
        for node, nic in enumerate(system.nics):
            nic.add_request_listener(
                (lambda k: (lambda p, sid, c, a:
                            logs[k].append((sid, p.req_id))))(node))
        system.run_until_done(120_000)
        assert system.all_cores_finished(), "SCORPIO soak deadlocked"
        for node in range(1, 9):
            assert logs[node] == logs[0], "global order diverged"
        assert system.single_owner_invariant()
        assert system.mesh.check_sid_invariant()

    @settings(max_examples=6, deadline=None)
    @given(raw=traces_strategy(4))
    def test_tiny_mesh(self, raw):
        system = ScorpioSystem(traces=build_traces(raw),
                               noc=NocConfig(width=2, height=2))
        system.run_until_done(120_000)
        assert system.all_cores_finished()
        system.run(500)
        assert system.quiesced()


class TestDirectorySoak:
    @settings(max_examples=6, deadline=None)
    @given(raw=traces_strategy(9, max_ops=5))
    def test_lpd_random_workloads_complete(self, raw):
        system = DirectorySystem(scheme="LPD", traces=build_traces(raw),
                                 noc=NocConfig(width=3, height=3))
        system.run_until_done(150_000)
        assert system.all_cores_finished(), "LPD soak deadlocked"

    @settings(max_examples=6, deadline=None)
    @given(raw=traces_strategy(9, max_ops=5))
    def test_ht_random_workloads_complete(self, raw):
        system = DirectorySystem(scheme="HT", traces=build_traces(raw),
                                 noc=NocConfig(width=3, height=3))
        system.run_until_done(150_000)
        assert system.all_cores_finished(), "HT soak deadlocked"
