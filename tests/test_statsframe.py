"""StatsFrame queries and the bounded-reservoir Histogram."""

import json

import pytest

from repro.sim.stats import DEFAULT_SAMPLE_CAP, Histogram, StatsRegistry
from repro.sim.statsframe import StatsFrame

SNAPSHOT = {
    "noc.flits.transmitted": 120.0,
    "nic.requests_sent": 30.0,
    "l2.miss_latency.mean": 52.0,
    "l2.miss_latency.count": 90.0,
    "l2.breakdown.cache.bcast_net.mean": 20.0,
    "l2.breakdown.cache.bcast_net.count": 90.0,
    "l2.breakdown.cache.ordering.mean": 10.0,
    "l2.breakdown.cache.ordering.count": 90.0,
    "meshes.active": 2.0,
}


@pytest.fixture
def frame():
    return StatsFrame(SNAPSHOT)


class TestStatsFrame:
    def test_exact_lookup_returns_float(self, frame):
        assert frame["noc.flits.transmitted"] == 120.0
        with pytest.raises(KeyError):
            frame["noc.flits.dropped"]

    def test_value_with_default(self, frame):
        assert frame.value("nic.requests_sent") == 30.0
        assert frame.value("missing", 7.0) == 7.0

    def test_wildcard_indexing_returns_subframe(self, frame):
        sub = frame["l2.breakdown.cache.*"]
        assert isinstance(sub, StatsFrame)
        assert sub.mean == {"l2.breakdown.cache.bcast_net": 20.0,
                            "l2.breakdown.cache.ordering": 10.0}

    def test_select_by_stem_brings_the_pair(self, frame):
        sub = frame.select("l2.miss_latency")
        assert set(sub) == {"l2.miss_latency.mean",
                            "l2.miss_latency.count"}

    def test_relative_to_strips_prefix(self, frame):
        sub = frame.relative_to("l2.breakdown.cache.")
        assert sub.mean == {"bcast_net": 20.0, "ordering": 10.0}
        assert sub.count == {"bcast_net": 90.0, "ordering": 90.0}

    def test_mean_is_suffix_based_for_partial_snapshots(self):
        partial = StatsFrame({"x.mean": 5.0})
        assert partial.mean == {"x": 5.0}
        assert partial.count == {}

    def test_scalars_exclude_histogram_pairs(self, frame):
        assert frame.scalars == {"noc.flits.transmitted": 120.0,
                                 "nic.requests_sent": 30.0,
                                 "meshes.active": 2.0}

    def test_groups(self, frame):
        groups = frame.groups()
        assert set(groups) == {"noc", "nic", "l2", "meshes"}
        assert groups["l2"].value("l2.miss_latency.mean") == 52.0

    def test_mapping_protocol(self, frame):
        assert len(frame) == len(SNAPSHOT)
        assert list(frame) == sorted(SNAPSHOT)
        assert "meshes.active" in frame
        assert dict(frame) == SNAPSHOT

    def test_total(self, frame):
        assert frame.select("l2.breakdown.cache.*.mean").total() == 30.0

    def test_to_json_is_stable(self, frame):
        text = frame.to_json()
        assert text == StatsFrame(dict(reversed(list(
            SNAPSHOT.items())))).to_json()
        assert json.loads(text) == SNAPSHOT

    def test_table_renders_histograms_once(self, frame):
        text = frame.table(title="t")
        assert text.startswith("t")
        assert "l2.miss_latency " in text or "l2.miss_latency  " in text
        assert "mean 52.00 (n=90)" in text

    def test_from_registry_and_registry_frame(self):
        registry = StatsRegistry()
        registry.incr("hits", 3)
        registry.observe("lat", 10.0)
        frame = registry.frame()
        assert frame["hits"] == 3.0
        assert frame.mean == {"lat": 10.0}
        assert StatsFrame.from_registry(registry).to_dict() == \
            frame.to_dict()


class TestHistogramReservoir:
    def test_summary_exact_beyond_cap(self):
        hist = Histogram(cap=16)
        for value in range(1000):
            hist.add(float(value))
        assert hist.count == 1000
        assert hist.total == sum(range(1000))
        assert hist.mean == pytest.approx(499.5)
        assert hist.minimum == 0.0 and hist.maximum == 999.0
        assert len(hist.samples()) == 16

    def test_reservoir_is_deterministic(self):
        def build():
            hist = Histogram(cap=8)
            for value in range(500):
                hist.add(float(value))
            return hist.samples()

        assert build() == build()

    def test_exact_below_cap(self):
        hist = Histogram(cap=100)
        for value in (5.0, 1.0, 9.0):
            hist.add(value)
        assert sorted(hist.samples()) == [1.0, 5.0, 9.0]
        assert hist.percentile(50) == 5.0

    def test_cap_zero_is_unbounded(self):
        hist = Histogram(cap=0)
        for value in range(DEFAULT_SAMPLE_CAP + 100):
            hist.add(float(value))
        assert len(hist.samples()) == DEFAULT_SAMPLE_CAP + 100

    def test_default_cap_applies(self):
        hist = Histogram()
        for value in range(DEFAULT_SAMPLE_CAP + 500):
            hist.add(float(value))
        assert len(hist.samples()) == DEFAULT_SAMPLE_CAP
        assert hist.count == DEFAULT_SAMPLE_CAP + 500

    def test_percentile_approximation_stays_in_range(self):
        hist = Histogram(cap=64)
        for value in range(10_000):
            hist.add(float(value))
        p50 = hist.percentile(50)
        assert 0.0 <= p50 <= 9999.0
        # A uniform reservoir's median lands well inside the bulk.
        assert 1000.0 < p50 < 9000.0

    def test_merge_folds_summary_exactly_under_cap(self):
        a, b = StatsRegistry(), StatsRegistry()
        for value in range(6000):
            a.observe("x", float(value))
        for value in range(4000):
            b.observe("x", float(value))
        a.merge(b)
        hist = a.histograms["x"]
        assert hist.count == 10_000
        expected = (sum(range(6000)) + sum(range(4000))) / 10_000
        assert hist.mean == pytest.approx(expected)
        assert len(hist.samples()) <= DEFAULT_SAMPLE_CAP

    def test_snapshot_mean_count_unaffected_by_cap(self):
        capped, unbounded = StatsRegistry(), StatsRegistry()
        capped.histograms["x"] = Histogram(cap=4)
        unbounded.histograms["x"] = Histogram(cap=0)
        for value in range(100):
            capped.observe("x", float(value))
            unbounded.observe("x", float(value))
        assert capped.snapshot() == unbounded.snapshot()
