"""The hardened sweep execution path: per-point worker processes with
timeout, bounded retry, and loud permanent failure.

The contract under test (ISSUE 10 satellite): a worker that dies
mid-point — crash, SIGKILL, timeout — never loses the point.  It
retries up to the bound, and a point that keeps failing surfaces as a
:class:`SweepPointError` listing every failed fingerprint, never as a
hang or a silent gap in the results."""

import os
import signal
import time

import pytest

from repro.core.config import ChipConfig
from repro.experiments import RunSpec, SweepPointError, run_sweep
from repro.experiments.procpool import SlotPool, run_points

KNOBS = dict(ops_per_core=8, workload_scale=0.02, think_scale=10.0)


@pytest.fixture(autouse=True)
def isolated_execution_context(monkeypatch):
    import repro.experiments.context as context
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    monkeypatch.setattr(context, "_context", context.ExecutionContext())


def tiny_spec(**overrides):
    params = dict(benchmark="fft", protocol="scorpio",
                  config=ChipConfig.variant(3, 3), seed=0, **KNOBS)
    params.update(overrides)
    return RunSpec(**params)


# Workers must be module-level (forked children call them).

def _double(item):
    return item * 2


def _crash_on_odd(item):
    if item % 2:
        raise ValueError(f"odd item {item}")
    return item


def _sigkill_self(item):
    os.kill(os.getpid(), signal.SIGKILL)


def _sigkill_once(item):
    flag, value = item
    if not os.path.exists(flag):
        open(flag, "w").close()
        os.kill(os.getpid(), signal.SIGKILL)
    return value * 10


def _sleep_forever(item):
    time.sleep(300)


class TestRunPoints:
    def test_results_keyed_like_items(self):
        results, failures = run_points(
            [(k, k) for k in range(5)], _double, jobs=3)
        assert failures == {}
        assert results == {k: k * 2 for k in range(5)}

    def test_exception_carries_message_and_retries(self):
        events = []
        results, failures = run_points(
            [(0, 0), (1, 1)], _crash_on_odd, jobs=2, retries=1,
            backoff=0.01, on_event=events.append)
        assert results == {0: 0}
        assert list(failures) == [1]
        assert "ValueError: odd item 1" in failures[1]
        # One retry happened before the permanent failure.
        assert [e[0] for e in events if e[1] == 1] == ["retry", "failed"]

    def test_zero_retries_fails_immediately(self):
        events = []
        _results, failures = run_points(
            [(1, 1)], _crash_on_odd, jobs=1, retries=0,
            on_event=events.append)
        assert list(failures) == [1]
        assert [e[0] for e in events] == ["failed"]

    def test_sigkill_is_attributed_not_hung(self):
        results, failures = run_points(
            [("victim", 0)], _sigkill_self, jobs=1, retries=1,
            backoff=0.01)
        assert results == {}
        assert "killed by signal 9" in failures["victim"]

    def test_sigkill_once_retries_to_success(self, tmp_path):
        flag = str(tmp_path / "first-attempt")
        events = []
        results, failures = run_points(
            [("p", (flag, 7))], _sigkill_once, jobs=1, retries=1,
            backoff=0.01, on_event=events.append)
        assert failures == {}
        assert results == {"p": 70}
        assert events[0][0] == "retry"

    def test_timeout_kills_and_reports(self):
        _results, failures = run_points(
            [("slow", 0)], _sleep_forever, jobs=1, retries=0,
            timeout=0.3)
        assert "timed out" in failures["slow"]


class TestSlotPool:
    def test_spawn_counter_counts_attempts(self, tmp_path):
        flag = str(tmp_path / "flag")
        pool = SlotPool(_sigkill_once, jobs=1, retries=1, backoff=0.01)
        pool.submit("p", (flag, 1))
        while pool.pending():
            pool.step()
            pool.wait(0.05)
        pool.close()
        assert pool.spawned == 2      # the killed attempt and the retry

    def test_precheck_short_circuits_without_spawning(self):
        pool = SlotPool(_double, jobs=2, precheck=lambda key: key * 100)
        pool.submit(3, 3)
        events = []
        while pool.pending():
            events.extend(pool.step())
            pool.wait(0.05)
        pool.close()
        assert events == [("done", 3, 300)]
        assert pool.spawned == 0


class TestRunSweepHardening:
    def test_parallel_identical_to_serial(self):
        specs = [tiny_spec(protocol=p) for p in ("scorpio", "lpd")]
        parallel = run_sweep(specs, jobs=2, cache=False)
        serial = run_sweep(specs, jobs=1, cache=False)
        assert [r.payload() for r in parallel] \
            == [r.payload() for r in serial]

    def test_sigkilled_worker_loses_no_points(self, tmp_path, monkeypatch,
                                              capsys):
        """SIGKILL one worker mid-sweep: the sweep retries the point and
        the results are byte-identical to an undisturbed run."""
        import repro.experiments.sweep as sweep_mod
        specs = [tiny_spec(seed=s) for s in (0, 1)]
        undisturbed = run_sweep(specs, jobs=2, cache=False)

        flag = tmp_path / "killed-once"
        real_worker = sweep_mod._pool_worker

        def killing_worker(item):
            spec, _fp = item
            if spec.seed == 1 and not flag.exists():
                flag.touch()
                os.kill(os.getpid(), signal.SIGKILL)
            return real_worker(item)

        monkeypatch.setattr(sweep_mod, "_pool_worker", killing_worker)
        disturbed = run_sweep(specs, jobs=2, cache=False)
        assert [r.payload() for r in disturbed] \
            == [r.payload() for r in undisturbed]
        assert "retrying" in capsys.readouterr().err

    def test_permanent_failure_is_loud_and_lists_fingerprints(
            self, monkeypatch, capsys):
        import repro.experiments.sweep as sweep_mod
        specs = [tiny_spec(seed=s) for s in (0, 1)]
        real_worker = sweep_mod._pool_worker

        def failing_worker(item):
            spec, _fp = item
            if spec.seed == 1:
                raise RuntimeError("simulated point crash")
            return real_worker(item)

        monkeypatch.setattr(sweep_mod, "_pool_worker", failing_worker)
        with pytest.raises(SweepPointError) as excinfo:
            run_sweep(specs, jobs=2, cache=False, retries=1)
        bad_fp = specs[1].fingerprint()
        assert bad_fp in excinfo.value.failures
        assert "simulated point crash" in excinfo.value.failures[bad_fp]
        assert bad_fp in capsys.readouterr().err
