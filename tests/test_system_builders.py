"""The system-builder registry: SystemSpec fingerprints, sweep/cache
integration for arbitrary systems, and the rewired figure consumers."""

import json

import pytest

from repro.core.config import ChipConfig
from repro.experiments import (ResultCache, RunSpec, SystemSpec,
                               builder_names, execute_system_spec,
                               executing, get_builder, list_builders,
                               resolve_workload, run_sweep)

TINY_BENCH = {"kind": "benchmark", "name": "fft", "ops_per_core": 8,
              "workload_scale": 0.02, "think_scale": 10.0, "seed": 0}


@pytest.fixture(autouse=True)
def isolated_execution_context(monkeypatch):
    """Shield these tests from an exported REPRO_JOBS/REPRO_CACHE_DIR."""
    import repro.experiments.context as context
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    monkeypatch.setattr(context, "_context", context.ExecutionContext())


def tiny_system(**overrides):
    params = dict(builder="inso", config=ChipConfig.variant(3, 3),
                  workload=dict(TINY_BENCH))
    params.update(overrides)
    return SystemSpec(**params)


def canonical(results):
    return json.dumps([r.payload() for r in results], sort_keys=True)


class TestRegistry:
    def test_expected_builders_registered(self):
        for name in ("scorpio", "directory", "multimesh", "tokenb",
                     "inso", "timestamp", "uncorq", "litmus"):
            assert name in builder_names()

    def test_list_builders_is_introspectable(self):
        rows = {name: (description, defaults)
                for name, description, defaults in list_builders()}
        assert set(rows) == set(builder_names())
        description, defaults = rows["inso"]
        assert "INSO" in description
        assert defaults["expiration_window"] == 20

    def test_unknown_builder_raises(self):
        with pytest.raises(KeyError, match="unknown system builder"):
            get_builder("tokenring")
        with pytest.raises(KeyError, match="unknown system builder"):
            tiny_system(builder="tokenring").fingerprint(code_version="x")
        with pytest.raises(KeyError, match="unknown system builder"):
            run_sweep([tiny_system(builder="tokenring")], cache=False)

    def test_unknown_builder_param_raises(self):
        spec = tiny_system(params={"expiry_window": 40})
        with pytest.raises(ValueError, match="unknown builder parameter"):
            spec.fingerprint(code_version="x")

    def test_missing_required_param_raises(self):
        spec = SystemSpec(builder="litmus", params={"protocol": "scorpio"})
        with pytest.raises(ValueError, match="requires"):
            spec.fingerprint(code_version="x")


class TestWorkloads:
    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown workload kind"):
            resolve_workload({"kind": "pointer-chase"})

    def test_unknown_workload_param_raises(self):
        with pytest.raises(ValueError, match="unknown workload parameter"):
            resolve_workload({"kind": "locks", "acqs": 2})

    def test_benchmark_key_embeds_resolved_profile(self):
        key = resolve_workload(dict(TINY_BENCH)).key
        assert key["profile"]["name"] == "fft"
        assert key["ops_per_core"] == 8

    def test_lone_write_places_single_store(self):
        resolved = resolve_workload({"kind": "lone_write", "node": 2})
        traces = resolved.build_traces(9)
        assert [len(t) for t in traces] == [0, 0, 1] + [0] * 6

    def test_lone_write_node_bounds_checked(self):
        resolved = resolve_workload({"kind": "lone_write", "node": 9})
        with pytest.raises(ValueError, match="outside"):
            resolved.build_traces(9)


class TestFingerprint:
    def test_defaults_merge_into_the_key(self):
        # Omitting a param and passing its default must fingerprint
        # identically — otherwise the cache splits on spelling.
        explicit = tiny_system(params={"expiration_window": 20})
        assert tiny_system().fingerprint(code_version="x") \
            == explicit.fingerprint(code_version="x")

    def test_builder_kwargs_are_keyed(self):
        assert tiny_system().fingerprint(code_version="x") != tiny_system(
            params={"expiration_window": 80}).fingerprint(code_version="x")

    def test_workload_config_and_builder_are_keyed(self):
        base = tiny_system().fingerprint(code_version="x")
        other_workload = dict(TINY_BENCH, seed=5)
        assert tiny_system(workload=other_workload).fingerprint(
            code_version="x") != base
        assert tiny_system(builder="tokenb").fingerprint(
            code_version="x") != base
        assert tiny_system(config=ChipConfig.variant(
            3, 3, goreq_vcs=6)).fingerprint(code_version="x") != base

    def test_label_is_not_keyed(self):
        assert tiny_system(label="a").fingerprint(code_version="x") \
            == tiny_system().fingerprint(code_version="x")


class TestSweepIntegration:
    def test_cache_hit_is_byte_identical_and_runs_nothing(self, tmp_path):
        cache = ResultCache(tmp_path)
        specs = [tiny_system(), tiny_system(builder="tokenb")]
        fresh = run_sweep(specs, cache=cache)
        assert [r.cached for r in fresh] == [False, False]
        recalled = run_sweep(specs, cache=cache)
        assert [r.cached for r in recalled] == [True, True]
        assert canonical(recalled) == canonical(fresh)

    def test_cache_invalidates_when_builder_kwargs_change(self, tmp_path):
        run_sweep([tiny_system()], cache=tmp_path)
        [changed] = run_sweep([tiny_system(
            params={"expiration_window": 80})], cache=tmp_path)
        assert not changed.cached

    def test_parallel_agrees_with_serial(self):
        specs = [tiny_system(label="a"),
                 tiny_system(builder="scorpio", label="b"),
                 tiny_system(builder="directory",
                             params={"scheme": "HT"}, label="c")]
        serial = run_sweep(specs, jobs=1, cache=False)
        parallel = run_sweep(specs, jobs=3, cache=False)
        assert canonical(parallel) == canonical(serial)

    def test_mixed_batch_with_runspecs(self, tmp_path):
        # RunSpec and SystemSpec points share one batch, pool, and cache.
        mixed = [RunSpec(benchmark="fft", protocol="scorpio",
                         config=ChipConfig.variant(3, 3), ops_per_core=8,
                         workload_scale=0.02, think_scale=10.0),
                 tiny_system()]
        fresh = run_sweep(mixed, jobs=2, cache=tmp_path)
        assert [r.protocol for r in fresh] == ["scorpio", "inso"]
        recalled = run_sweep(mixed, cache=tmp_path)
        assert all(r.cached for r in recalled)
        assert canonical(recalled) == canonical(fresh)

    def test_extra_payload_round_trips_through_cache(self, tmp_path):
        spec = SystemSpec(
            builder="litmus", config=ChipConfig.variant(3, 3),
            params={"name": "mp",
                    "threads": [[["W", "x"], ["W", "y"]],
                                [["R", "y"], ["R", "x"]]]})
        [fresh] = run_sweep([spec], cache=tmp_path)
        [recalled] = run_sweep([spec], cache=tmp_path)
        assert recalled.cached
        assert recalled.extra == fresh.extra
        assert fresh.extra["observations"]

    def test_litmus_results_report_the_program_name(self, tmp_path):
        # An idle workload must not mask the program name: explicit
        # {"kind": "idle"} and an omitted workload fingerprint the same
        # and must display the same.
        from repro.verification.litmus import MESSAGE_PASSING, litmus_spec
        spec = litmus_spec(MESSAGE_PASSING)
        assert spec.benchmark_name == "message-passing"
        bare = SystemSpec(builder="litmus", config=spec.config,
                          params=dict(spec.params),
                          max_cycles=spec.max_cycles)
        assert bare.fingerprint(code_version="x") \
            == spec.fingerprint(code_version="x")
        [result] = run_sweep([spec], cache=tmp_path)
        assert result.benchmark == "message-passing"

    def test_system_runs_match_direct_execution(self):
        spec = tiny_system()
        direct = execute_system_spec(spec)
        [swept] = run_sweep([spec], cache=False)
        assert swept.runtime == direct.runtime
        assert swept.stats == direct.stats
        assert swept.protocol == "inso"
        assert swept.benchmark == "fft"


class TestCompareSystems:
    def test_labels_order_and_metrics(self):
        from repro.analysis.comparison import compare_systems
        results = compare_systems(
            {"SCORPIO": ("scorpio", {}),
             "TS": ("timestamp", {})},
            workload=dict(TINY_BENCH),
            config=ChipConfig.variant(3, 3))
        assert list(results) == ["SCORPIO", "TS"]
        assert results["TS"].stats["system.reorder_buffer_peak"] > 0
        assert results["SCORPIO"].runtime > 0


class TestFigureConsumers:
    """The rewired figures: parallel == serial byte-identity and a warm
    cache rerun that performs zero simulation runs."""

    @pytest.fixture(autouse=True)
    def shrink_quick_regime(self, monkeypatch):
        import repro.analysis.figures as figures
        monkeypatch.setattr(figures, "QUICK",
                            dict(ops_per_core=10, workload_scale=0.02,
                                 think_scale=10.0))

    @pytest.mark.parametrize("fig_id", ["fig7", "incf", "locks", "sec2"])
    def test_parallel_and_cached_match_serial(self, fig_id, tmp_path):
        from repro.analysis.figures import generate
        serial = generate(fig_id)
        with executing(jobs=3):
            parallel = generate(fig_id)
        assert parallel == serial
        with executing(cache=str(tmp_path)) as ctx:
            cold = generate(fig_id)
            hits_after_cold = ctx.cache.hits
            warm = generate(fig_id)
            assert cold == warm == serial
            # The warm pass answered every point from the cache: no new
            # misses, one hit per point.
            assert ctx.cache.misses == ctx.cache.entries()
            assert ctx.cache.hits == hits_after_cold \
                + ctx.cache.entries()
