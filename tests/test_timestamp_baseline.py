"""Tests for the Timestamp Snooping (TS) baseline of Sec. 2."""

import pytest

from repro.coherence.mosi import State
from repro.cpu.trace import Trace, TraceOp
from repro.noc.config import NocConfig, NotificationConfig
from repro.ordering_baselines.systems import TimestampSystem
from repro.ordering_baselines.timestamp import TimestampNetworkInterface
from repro.workloads.synthetic import uniform_random_trace

ADDR = 0x4000_0000


def pad(traces, n):
    return list(traces) + [Trace([])] * (n - len(traces))


def run_done(system, max_cycles=120_000):
    system.run_until_done(max_cycles)
    assert system.all_cores_finished()
    return system.engine.cycle


class TestTimestampOrdering:
    def test_basic_coherence(self):
        noc = NocConfig(width=3, height=3)
        system = TimestampSystem(traces=pad([
            Trace([TraceOp("W", ADDR, 1)]),
            Trace([TraceOp("R", ADDR, 800)]),
        ], 9), noc=noc)
        run_done(system)
        assert system.l2s[0].state_of(ADDR) is State.O
        assert system.l2s[1].state_of(ADDR) is State.S

    def test_global_order_agreement(self):
        # Every node must process the requests in the same (OT, SID)
        # order even though arrivals differ — TS's defining property.
        noc = NocConfig(width=3, height=3)
        traces = [uniform_random_trace(c, 8, 8, write_fraction=0.5,
                                       think=4, seed=7) for c in range(9)]
        system = TimestampSystem(traces=traces, noc=noc)
        logs = {n: [] for n in range(9)}
        for node, nic in enumerate(system.nics):
            nic.add_request_listener(
                (lambda n: (lambda p, sid, c, a:
                            logs[n].append((sid, p.req_id))))(node))
        run_done(system, 200_000)
        for node in range(1, 9):
            assert logs[node] == logs[0]

    def test_no_late_arrivals_with_default_slack(self):
        noc = NocConfig(width=3, height=3)
        traces = [uniform_random_trace(c, 8, 8, write_fraction=0.4,
                                       think=6, seed=3) for c in range(9)]
        system = TimestampSystem(traces=traces, noc=noc)
        run_done(system, 200_000)
        assert system.late_arrivals() == 0

    def test_ordering_wait_tracks_slack(self):
        # A lone request still waits ~slack before GT catches up: the
        # latency cost TS pays that SCORPIO's notification window avoids.
        noc = NocConfig(width=3, height=3)
        system = TimestampSystem(traces=pad([
            Trace([TraceOp("R", ADDR, 1)]),
        ], 9), noc=noc, slack=80)
        run_done(system)
        assert system.stats.mean("nic.ordering_wait") > 20

    def test_larger_slack_is_slower(self):
        noc = NocConfig(width=3, height=3)
        runtimes = {}
        for slack in (40, 160):
            traces = [uniform_random_trace(c, 6, 8, write_fraction=0.4,
                                           think=4, seed=2)
                      for c in range(9)]
            system = TimestampSystem(traces=traces, noc=noc, slack=slack)
            runtimes[slack] = run_done(system, 300_000)
        assert runtimes[160] > runtimes[40]

    def test_rejects_bad_parameters(self):
        noc = NocConfig(width=3, height=3)
        notif = NotificationConfig(window=13)
        with pytest.raises(ValueError):
            TimestampNetworkInterface(0, noc, notif, slack=0)
        with pytest.raises(ValueError):
            TimestampNetworkInterface(0, noc, notif, slack=-4)

    def test_unicast_request_rejected(self):
        noc = NocConfig(width=3, height=3)
        system = TimestampSystem(traces=None, noc=noc)
        with pytest.raises(ValueError):
            system.nics[0].send_request(object(), dst=3)


class TestReorderBufferCost:
    """The Sec. 2 critique: buffers scale with cores x outstanding."""

    def test_reorder_peak_counted(self):
        noc = NocConfig(width=3, height=3)
        traces = [uniform_random_trace(c, 8, 8, write_fraction=0.4,
                                       think=2, seed=11) for c in range(9)]
        system = TimestampSystem(traces=traces, noc=noc)
        run_done(system, 200_000)
        assert system.reorder_buffer_peak() > 1

    def test_peak_grows_with_concurrency(self):
        # More simultaneously-injecting cores -> deeper reorder buffers.
        noc = NocConfig(width=4, height=4)
        peaks = {}
        for active in (4, 16):
            traces = pad([uniform_random_trace(c, 10, 12,
                                               write_fraction=0.4,
                                               think=2, seed=13)
                          for c in range(active)], 16)
            system = TimestampSystem(traces=traces, noc=noc)
            run_done(system, 400_000)
            peaks[active] = system.reorder_buffer_peak()
        assert peaks[16] > peaks[4]

    def test_peak_bounded_by_in_flight_window(self):
        # With one request in flight at a time, the buffer stays tiny.
        noc = NocConfig(width=3, height=3)
        system = TimestampSystem(traces=pad([
            Trace([TraceOp("R", ADDR, 1),
                   TraceOp("R", ADDR + 64, 500)]),
        ], 9), noc=noc)
        run_done(system)
        assert system.reorder_buffer_peak() <= 2
