"""Trace-injector core tests: AHB outstanding cap, L1 interaction,
think-time pacing, completion accounting."""

from repro.cpu.core import CoreConfig, TraceCore
from repro.cpu.trace import Trace, TraceOp
from repro.sim.engine import Engine


class FakeL2:
    """Accepts requests and completes them after a fixed delay."""

    def __init__(self, latency=20, accept=True):
        self.latency = latency
        self.accept = accept
        self.requests = []
        self._cb = None
        self._inv = None
        self._pending = []

    def set_completion_callback(self, fn):
        self._cb = fn

    def set_l1_invalidate(self, fn):
        self._inv = fn

    def core_request(self, op, addr, cycle, token=None):
        if not self.accept:
            return False
        self.requests.append((op, addr, cycle))
        self._pending.append((cycle + self.latency, token))
        return True

    def tick(self, cycle):
        for entry in [p for p in self._pending if p[0] <= cycle]:
            self._pending.remove(entry)
            self._cb(entry[1], cycle)


def run_core(trace, config=None, l2=None, cycles=2000):
    engine = Engine()
    l2 = l2 or FakeL2()
    core = TraceCore(0, l2, trace, config or CoreConfig(l1_enabled=False))
    engine.register(core)
    engine.add_watcher(l2.tick)
    engine.run(cycles, until=lambda: core.finished)
    return core, l2, engine


class TestIssue:
    def test_completes_trace(self):
        trace = Trace([TraceOp("R", 0x40, 1), TraceOp("W", 0x80, 5)])
        core, l2, _ = run_core(trace)
        assert core.finished
        assert core.completed_ops == 2
        assert [r[0] for r in l2.requests] == ["R", "W"]

    def test_outstanding_cap(self):
        trace = Trace([TraceOp("R", i * 32, 1) for i in range(6)])
        slow = FakeL2(latency=500)
        config = CoreConfig(max_outstanding=2, l1_enabled=False)
        engine = Engine()
        core = TraceCore(0, slow, trace, config)
        engine.register(core)
        engine.add_watcher(slow.tick)
        engine.run(100)
        assert len(slow.requests) == 2   # capped

    def test_think_time_paces_issue(self):
        trace = Trace([TraceOp("R", 0, 1), TraceOp("R", 32, 50)])
        core, l2, _ = run_core(trace)
        issue_gap = l2.requests[1][2] - l2.requests[0][2]
        assert issue_gap >= 50

    def test_l2_stall_retries(self):
        l2 = FakeL2()
        l2.accept = False
        trace = Trace([TraceOp("R", 0, 1)])
        engine = Engine()
        core = TraceCore(0, l2, trace, CoreConfig(l1_enabled=False))
        engine.register(core)
        engine.add_watcher(l2.tick)
        engine.run(50)
        assert not l2.requests
        l2.accept = True
        engine.run(50, until=lambda: core.finished)
        assert core.finished

    def test_progress_metric(self):
        trace = Trace([TraceOp("R", i * 32, 1) for i in range(4)])
        core, _l2, _ = run_core(trace)
        assert core.progress() == 1.0


class TestL1Interaction:
    def test_l1_hit_skips_l2(self):
        # Think time exceeds the L2 latency so the refill lands first.
        trace = Trace([TraceOp("R", 0x40, 1), TraceOp("R", 0x40, 50)])
        l2 = FakeL2()
        core, l2, _ = run_core(trace, CoreConfig(l1_enabled=True), l2)
        assert core.finished
        # Second read hits the refilled L1: only one L2 request.
        assert len(l2.requests) == 1
        assert core.completed_ops == 2

    def test_writes_always_reach_l2(self):
        trace = Trace([TraceOp("R", 0x40, 1), TraceOp("W", 0x40, 10),
                       TraceOp("W", 0x40, 10)])
        l2 = FakeL2()
        core, l2, _ = run_core(trace, CoreConfig(l1_enabled=True), l2)
        # Write-through: both writes reach the L2 despite the L1 copy.
        assert len(l2.requests) == 3

    def test_invalidation_hook_installed(self):
        l2 = FakeL2()
        core, l2, _ = run_core(Trace([TraceOp("R", 0x40, 1)]),
                               CoreConfig(l1_enabled=True), l2)
        assert l2._inv is not None
        assert core.l1.holds(0x40)
        l2._inv(0x40)
        assert not core.l1.holds(0x40)

    def test_finish_cycle_recorded(self):
        trace = Trace([TraceOp("R", 0, 1)])
        core, _l2, engine = run_core(trace)
        assert core.finish_cycle is not None
        assert core.finish_cycle <= engine.cycle
