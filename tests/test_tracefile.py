"""Trace file round-trip and format-error tests (repro.cpu.tracefile)."""

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.trace import Trace, TraceOp
from repro.cpu.tracefile import (MAGIC, TraceFormatError, dump_traces,
                                 dumps_traces, load_traces)

ADDR = 0x4000_0000


def roundtrip(traces, expect_cores=0):
    return load_traces(io.StringIO(dumps_traces(traces)), expect_cores)


class TestRoundTrip:
    def test_simple(self):
        traces = [
            Trace([TraceOp("R", ADDR, 3), TraceOp("W", ADDR + 32, 1)]),
            Trace([TraceOp("A", 0x5000_0000, 10)]),
        ]
        loaded = roundtrip(traces)
        assert len(loaded) == 2
        assert list(loaded[0]) == list(traces[0])
        assert list(loaded[1]) == list(traces[1])

    def test_empty_core_preserved(self):
        traces = [Trace([]), Trace([TraceOp("R", ADDR, 1)])]
        loaded = roundtrip(traces)
        assert len(loaded) == 2
        assert len(loaded[0]) == 0

    def test_expect_cores_pads(self):
        loaded = roundtrip([Trace([TraceOp("R", ADDR, 1)])], expect_cores=9)
        assert len(loaded) == 9
        assert all(len(t) == 0 for t in loaded[1:])

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "bench.trace"
        traces = [Trace([TraceOp("W", ADDR + 64 * i, i + 1)])
                  for i in range(4)]
        dump_traces(traces, path)
        loaded = load_traces(path)
        assert [list(t) for t in loaded] == [list(t) for t in traces]

    @settings(max_examples=50, deadline=None)
    @given(st.lists(
        st.lists(st.tuples(st.sampled_from("RWA"),
                           st.integers(min_value=0, max_value=1 << 40),
                           st.integers(min_value=0, max_value=10_000)),
                 max_size=20),
        min_size=1, max_size=8))
    def test_roundtrip_property(self, spec):
        traces = [Trace([TraceOp(op, addr, think)
                         for op, addr, think in ops]) for ops in spec]
        loaded = roundtrip(traces)
        assert [list(t) for t in loaded] == [list(t) for t in traces]


class TestFormatErrors:
    def test_missing_magic(self):
        with pytest.raises(TraceFormatError, match="expected"):
            load_traces(io.StringIO("core 0\nR 0x0 1\n"))

    def test_empty_file(self):
        with pytest.raises(TraceFormatError, match="empty"):
            load_traces(io.StringIO(""))

    def test_op_before_core_header(self):
        with pytest.raises(TraceFormatError, match="before any"):
            load_traces(io.StringIO(f"{MAGIC}\nR 0x0 1\n"))

    def test_duplicate_core(self):
        text = f"{MAGIC}\ncore 0\ncore 0\n"
        with pytest.raises(TraceFormatError, match="duplicate"):
            load_traces(io.StringIO(text))

    def test_bad_op_kind(self):
        text = f"{MAGIC}\ncore 0\nX 0x0 1\n"
        with pytest.raises(TraceFormatError, match="op must be"):
            load_traces(io.StringIO(text))

    def test_bad_field_count(self):
        text = f"{MAGIC}\ncore 0\nR 0x0\n"
        with pytest.raises(TraceFormatError, match="expected"):
            load_traces(io.StringIO(text))

    def test_bad_number(self):
        text = f"{MAGIC}\ncore 0\nR zebra 1\n"
        with pytest.raises(TraceFormatError, match="not a number"):
            load_traces(io.StringIO(text))

    def test_negative_core(self):
        text = f"{MAGIC}\ncore -1\n"
        with pytest.raises(TraceFormatError, match="negative"):
            load_traces(io.StringIO(text))

    def test_too_many_cores_for_expectation(self):
        text = f"{MAGIC}\ncore 11\nR 0x0 1\n"
        with pytest.raises(TraceFormatError, match="expected"):
            load_traces(io.StringIO(text), expect_cores=9)

    def test_comments_and_blanks_ignored(self):
        text = f"{MAGIC}\n\n# hello\ncore 0\n# op follows\nR 0x20 4\n\n"
        loaded = load_traces(io.StringIO(text))
        assert list(loaded[0]) == [TraceOp("R", 0x20, 4)]


class TestApiIntegration:
    def test_run_trace_file(self, tmp_path):
        from repro.core import ChipConfig
        from repro.core.api import run_trace_file
        from repro.workloads.synthetic import generate_system_traces, scaled
        from repro.workloads.suites import profile

        config = ChipConfig.variant(3, 3)
        prof = scaled(profile("fft"), 0.02, 10.0)
        traces = generate_system_traces(prof, 9, 10, seed=1)
        path = tmp_path / "fft.trace"
        dump_traces(traces, path)

        result = run_trace_file(path, protocol="scorpio", config=config)
        assert result.progress == 1.0
        assert result.completed_ops == sum(len(t) for t in traces)
