"""Tests for the Uncorq baseline: logical ring + write waits (Sec. 2)."""

import pytest

from repro.coherence.mosi import State
from repro.cpu.trace import Trace, TraceOp
from repro.noc.config import NocConfig
from repro.ordering_baselines.systems import UncorqSystem
from repro.ordering_baselines.uncorq import LogicalRing, snake_order
from repro.sim.stats import StatsRegistry
from repro.workloads.synthetic import uniform_random_trace

ADDR = 0x4000_0000


def pad(traces, n):
    return list(traces) + [Trace([])] * (n - len(traces))


def run_done(system, max_cycles=120_000):
    system.run_until_done(max_cycles)
    assert system.all_cores_finished()
    return system.engine.cycle


class TestSnakeOrder:
    def test_visits_every_node_once(self):
        order = snake_order(4, 3)
        assert sorted(order) == list(range(12))

    def test_consecutive_stops_are_mesh_neighbours(self):
        width, height = 5, 4
        order = snake_order(width, height)
        for here, there in zip(order, order[1:]):
            dx = abs(here % width - there % width)
            dy = abs(here // width - there // width)
            assert dx + dy == 1

    def test_row_direction_alternates(self):
        order = snake_order(3, 2)
        assert order == [0, 1, 2, 5, 4, 3]


class TestLogicalRing:
    def _ring(self, width=3, height=3, hop_latency=2):
        return LogicalRing(NocConfig(width=width, height=height),
                           StatsRegistry(), hop_latency=hop_latency)

    def test_traversal_latency_scales_with_node_count(self):
        lat9 = self._ring(3, 3).traversal_latency()
        lat36 = self._ring(6, 6).traversal_latency()
        lat64 = self._ring(8, 8).traversal_latency()
        assert lat9 < lat36 < lat64
        # Linear-ish: a 36-node ring is ~4x a 9-node ring.
        assert lat36 == pytest.approx(4 * lat9, rel=0.25)

    def test_token_returns_after_traversal_latency(self):
        ring = self._ring()
        done = {}
        ring.launch(req_id=1, origin=4, cycle=0,
                    on_complete=lambda rid, c: done.setdefault(rid, c))
        for cycle in range(ring.traversal_latency() + 2):
            ring.step(cycle)
        assert done[1] == ring.traversal_latency()

    def test_token_visits_all_nodes(self):
        ring = self._ring(hop_latency=1)
        seen = set()
        ring.launch(req_id=7, origin=0, cycle=0,
                    on_complete=lambda rid, c: None)
        cycle = 0
        while ring.in_flight():
            seen.update(ring.token_positions().values())
            ring.step(cycle)
            cycle += 1
        assert seen == set(range(9))

    def test_multiple_tokens_independent(self):
        ring = self._ring()
        done = {}
        ring.launch(1, 0, 0, lambda rid, c: done.setdefault(rid, c))
        ring.launch(2, 8, 5, lambda rid, c: done.setdefault(rid, c))
        for cycle in range(ring.traversal_latency() + 10):
            ring.step(cycle)
        assert done[1] == ring.traversal_latency()
        assert done[2] == 5 + ring.traversal_latency()

    def test_rejects_bad_hop_latency(self):
        with pytest.raises(ValueError):
            self._ring(hop_latency=0)


class TestUncorqSystem:
    def test_basic_coherence(self):
        noc = NocConfig(width=3, height=3)
        system = UncorqSystem(traces=pad([
            Trace([TraceOp("W", ADDR, 1)]),
            Trace([TraceOp("R", ADDR, 1200)]),
        ], 9), noc=noc)
        run_done(system)
        assert system.l2s[0].state_of(ADDR) is State.O
        assert system.l2s[1].state_of(ADDR) is State.S

    def test_write_waits_for_ring(self):
        # A lone write cannot complete before the full ring traversal.
        noc = NocConfig(width=3, height=3)
        system = UncorqSystem(traces=pad([
            Trace([TraceOp("W", ADDR, 1)]),
        ], 9), noc=noc)
        runtime = run_done(system)
        assert runtime >= system.ring_traversal_latency()
        assert system.stats.counter("uncorq.tokens_launched") == 1

    def test_read_does_not_wait_for_ring(self):
        # Reads never launch tokens (Sec. 2: "read requests do not wait").
        noc = NocConfig(width=3, height=3)
        system = UncorqSystem(traces=pad([
            Trace([TraceOp("R", ADDR, 1)]),
        ], 9), noc=noc)
        run_done(system)
        assert system.stats.counter("uncorq.tokens_launched") == 0

    def test_write_wait_scales_with_core_count(self):
        # The paper's critique: write waiting delay scales linearly with
        # core count, like a physical ring.  At small meshes the ring
        # hides under the DRAM access; by 8x8 it dominates the lone
        # write's completion time.
        runtimes = {}
        traversals = {}
        for width, height in ((3, 3), (6, 6), (8, 8)):
            noc = NocConfig(width=width, height=height)
            system = UncorqSystem(traces=pad([
                Trace([TraceOp("W", ADDR, 1)]),
            ], width * height), noc=noc)
            runtimes[width * height] = run_done(system)
            traversals[width * height] = system.ring_traversal_latency()
        assert traversals[9] < traversals[36] < traversals[64]
        assert runtimes[64] >= traversals[64] > runtimes[9]
        assert runtimes[64] > runtimes[9]

    def test_random_soak(self):
        noc = NocConfig(width=3, height=3)
        traces = [uniform_random_trace(c, 10, 10, write_fraction=0.4,
                                       think=5, seed=23) for c in range(9)]
        system = UncorqSystem(traces=traces, noc=noc)
        run_done(system, 400_000)

    def test_unicast_request_rejected(self):
        noc = NocConfig(width=3, height=3)
        system = UncorqSystem(traces=None, noc=noc)
        with pytest.raises(ValueError):
            system.nics[0].send_request(object(), dst=3)
