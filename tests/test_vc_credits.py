"""Unit tests for VC buffers, credit tracking and the SID tracker."""

import pytest

from repro.noc.packet import Packet, VNet
from repro.noc.sid_tracker import SidTracker
from repro.noc.vc import CreditTracker, InputPort, VCBuffer


def make_packet(sid=0, size=1, vnet=VNet.GO_REQ):
    return Packet(vnet=vnet, src=sid, dst=None, sid=sid, size_flits=size)


class TestVCBuffer:
    def test_accept_and_drain(self):
        vc = VCBuffer(VNet.GO_REQ, 0, depth=1)
        packet = make_packet()
        vc.accept(packet, frozenset({1, 4}), cycle=10, pipeline_delay=2)
        assert vc.occupied
        assert vc.ready_cycle == 12
        assert not vc.complete_outport(1)
        assert vc.occupied
        assert vc.complete_outport(4)
        assert vc.free

    def test_overrun_raises(self):
        vc = VCBuffer(VNet.GO_REQ, 0, depth=1)
        vc.accept(make_packet(), frozenset({1}), 0, 2)
        with pytest.raises(RuntimeError):
            vc.accept(make_packet(), frozenset({1}), 0, 2)

    def test_oversize_packet_raises(self):
        vc = VCBuffer(VNet.UO_RESP, 0, depth=3)
        with pytest.raises(RuntimeError):
            vc.accept(make_packet(size=5, vnet=VNet.UO_RESP),
                      frozenset({1}), 0, 2)


class TestInputPort:
    def test_geometry_with_reserved(self):
        port = InputPort(4, 1, 2, 3, reserved_vc=True)
        goreq = port.vcs(VNet.GO_REQ)
        assert len(goreq) == 5
        assert goreq[-1].reserved
        assert len(port.vcs(VNet.UO_RESP)) == 2

    def test_occupancy_count(self):
        port = InputPort(2, 1, 2, 3, reserved_vc=False)
        assert port.occupied_buffers() == 0
        port.vc(VNet.GO_REQ, 0).accept(make_packet(), frozenset({1}), 0, 2)
        assert port.occupied_buffers() == 1


class TestCreditTracker:
    def test_initial_credits(self):
        ct = CreditTracker(4, 1, 2, 3, reserved_vc=True)
        assert ct.credits(VNet.GO_REQ, 0) == 1
        assert ct.credits(VNet.UO_RESP, 1) == 3
        assert ct.reserved_index == 4
        assert ct.reserved_vc_free()

    def test_consume_release_roundtrip(self):
        ct = CreditTracker(4, 1, 2, 3, reserved_vc=True)
        ct.consume(VNet.UO_RESP, 0, 3)
        assert not ct.vc_free(VNet.UO_RESP, 0)
        ct.release(VNet.UO_RESP, 0, 3)
        assert ct.vc_free(VNet.UO_RESP, 0)

    def test_underflow_raises(self):
        ct = CreditTracker(4, 1, 2, 3, reserved_vc=True)
        with pytest.raises(RuntimeError):
            ct.consume(VNet.GO_REQ, 0, 2)

    def test_overflow_raises(self):
        ct = CreditTracker(4, 1, 2, 3, reserved_vc=True)
        with pytest.raises(RuntimeError):
            ct.release(VNet.GO_REQ, 0, 1)

    def test_free_normal_excludes_reserved(self):
        ct = CreditTracker(2, 1, 2, 3, reserved_vc=True)
        free = ct.free_normal_vcs(VNet.GO_REQ)
        assert free == [0, 1]
        ct.consume(VNet.GO_REQ, 0, 1)
        assert ct.free_normal_vcs(VNet.GO_REQ) == [1]


class TestSidTracker:
    def test_blocks_live_sid(self):
        tracker = SidTracker()
        assert not tracker.blocks(5)
        tracker.record(vc=1, sid=5)
        assert tracker.blocks(5)
        assert not tracker.blocks(6)

    def test_clear_on_credit_return(self):
        tracker = SidTracker()
        tracker.record(1, 5)
        assert tracker.clear_vc(1) == 5
        assert not tracker.blocks(5)

    def test_same_sid_multiple_vcs(self):
        # Can happen transiently across *different* output ports only;
        # within one tracker it means two VCs hold the same source.
        tracker = SidTracker()
        tracker.record(0, 5)
        tracker.record(1, 5)
        tracker.clear_vc(0)
        assert tracker.blocks(5)     # second entry still live
        tracker.clear_vc(1)
        assert not tracker.blocks(5)

    def test_double_record_same_vc_raises(self):
        tracker = SidTracker()
        tracker.record(0, 5)
        with pytest.raises(RuntimeError):
            tracker.record(0, 6)

    def test_clear_unknown_vc_is_noop(self):
        tracker = SidTracker()
        assert tracker.clear_vc(3) is None
