"""Workload generator tests: determinism, parameter effects, suites."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.trace import Trace, TraceOp
from repro.workloads.suites import (ALL_PROFILES, FIG6A_BENCHMARKS,
                                    FIG7_BENCHMARKS, PARSEC, SPLASH2, profile)
from repro.workloads.synthetic import (LINE, PRIVATE_STRIDE, SHARED_BASE,
                                       WorkloadProfile, generate_system_traces,
                                       generate_trace, scaled,
                                       uniform_random_trace)


class TestTraceOps:
    def test_validation(self):
        with pytest.raises(ValueError):
            TraceOp(op="X", addr=0)
        with pytest.raises(ValueError):
            TraceOp(op="R", addr=-1)
        with pytest.raises(ValueError):
            TraceOp(op="R", addr=0, think=-1)

    def test_trace_accessors(self):
        trace = Trace([TraceOp("R", 0), TraceOp("W", 32), TraceOp("R", 32)])
        assert len(trace) == 3
        assert trace.reads == 2 and trace.writes == 1
        assert trace.footprint() == 2


class TestGenerator:
    def test_deterministic(self):
        prof = profile("barnes")
        a = generate_trace(prof, core=3, n_ops=50, seed=9)
        b = generate_trace(prof, core=3, n_ops=50, seed=9)
        assert list(a) == list(b)

    def test_seed_changes_trace(self):
        prof = profile("barnes")
        a = generate_trace(prof, core=3, n_ops=50, seed=1)
        b = generate_trace(prof, core=3, n_ops=50, seed=2)
        assert list(a) != list(b)

    def test_cores_have_disjoint_private_regions(self):
        prof = profile("fft")
        t0 = generate_trace(prof, 0, 200, seed=0)
        t1 = generate_trace(prof, 1, 200, seed=0)
        private0 = {op.addr for op in t0 if op.addr < SHARED_BASE}
        private1 = {op.addr for op in t1 if op.addr < SHARED_BASE}
        assert private0 and private1
        assert not (private0 & private1)

    def test_shared_region_overlaps(self):
        prof = profile("canneal")   # heavy sharing
        t0 = generate_trace(prof, 0, 400, seed=0)
        t1 = generate_trace(prof, 1, 400, seed=0)
        shared0 = {op.addr for op in t0 if op.addr >= SHARED_BASE}
        shared1 = {op.addr for op in t1 if op.addr >= SHARED_BASE}
        assert shared0 & shared1

    def test_addresses_line_aligned(self):
        prof = profile("lu")
        for op in generate_trace(prof, 0, 100, seed=0):
            assert op.addr % LINE == 0

    def test_read_fraction_roughly_respected(self):
        prof = WorkloadProfile(name="x", read_fraction=0.9,
                               shared_fraction=0.0)
        trace = generate_trace(prof, 0, 2000, seed=0)
        assert trace.reads / len(trace) > 0.8

    def test_system_traces_one_per_core(self):
        prof = profile("lu")
        traces = generate_system_traces(prof, 36, 10, seed=0)
        assert len(traces) == 36
        assert all(len(t) == 10 for t in traces)

    def test_scaled_shrinks_footprint_and_stretches_think(self):
        prof = profile("canneal")
        small = scaled(prof, 0.1, think_scale=4.0)
        assert small.private_lines < prof.private_lines
        assert small.think_mean == prof.think_mean * 4

    @settings(max_examples=15, deadline=None)
    @given(shared=st.floats(0.0, 1.0), n_ops=st.integers(1, 100))
    def test_property_generation_never_crashes(self, shared, n_ops):
        prof = WorkloadProfile(name="p", shared_fraction=shared)
        trace = generate_trace(prof, 0, n_ops, seed=0)
        assert len(trace) == n_ops


class TestSuites:
    def test_all_paper_benchmarks_present(self):
        for name in ("barnes", "fft", "fmm", "lu", "nlu", "radix",
                     "water-nsq", "water-spatial"):
            assert name in SPLASH2
        for name in ("blackscholes", "canneal", "fluidanimate", "swaptions",
                     "streamcluster", "vips"):
            assert name in PARSEC

    def test_figure_benchmark_lists(self):
        assert len(FIG6A_BENCHMARKS) == 12
        assert set(FIG7_BENCHMARKS) <= set(ALL_PROFILES)

    def test_unknown_profile_raises(self):
        with pytest.raises(KeyError):
            profile("doom3")

    def test_canneal_is_the_big_sharer(self):
        # Characterization sanity: canneal has the largest shared footprint.
        canneal = profile("canneal")
        assert canneal.shared_lines == max(
            p.shared_lines for p in ALL_PROFILES.values())


class TestUniformRandom:
    def test_shared_flag(self):
        shared = uniform_random_trace(0, 50, 8, shared=True, seed=0)
        private = uniform_random_trace(0, 50, 8, shared=False, seed=0)
        assert all(op.addr >= SHARED_BASE for op in shared)
        assert all(op.addr < SHARED_BASE for op in private)

    def test_footprint_bounded(self):
        trace = uniform_random_trace(0, 500, 8, seed=0)
        assert trace.footprint() <= 8
